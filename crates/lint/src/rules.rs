//! The six project-specific rules (see DESIGN.md §"Static analysis"):
//!
//! - **L1** — no `unwrap()` / `expect()` / `panic!` / `unreachable!` in
//!   non-test code of the simulation crates. A panic in the replacement or
//!   quota logic aborts a multi-billion-access run and invalidates figures.
//! - **L2** — no `HashMap` / `HashSet` in simulator state. Their iteration
//!   order is randomized per process, which breaks run-to-run determinism.
//! - **L3** — no bare `as` narrowing casts in statistics/counter paths;
//!   use `try_into()` or saturating conversions so counters cannot silently
//!   truncate.
//! - **L4** — every `pub fn` in the adaptive-partitioning core
//!   (`crates/core/src/l3/`, `crates/core/src/engine.rs`) carries a doc
//!   comment.
//! - **L5** — no `thread::spawn` / `thread::scope` outside the sanctioned
//!   runner module (`crates/simcore/src/parallel.rs`). All experiment
//!   parallelism goes through that runner, whose index-ordered merge is
//!   what keeps `--jobs N` output bit-identical to serial runs; ad-hoc
//!   threads would reintroduce scheduling-dependent results.
//! - **L6** — no `println!` / `eprintln!` outside binary sources
//!   (`src/bin/`, `crates/*/src/bin/`, any `main.rs`, `examples/`) and the
//!   explicitly exempted modules. Library code reports through return
//!   values or the telemetry subsystem; stray prints corrupt the JSONL
//!   trace/metrics streams that figure binaries write to stdout-adjacent
//!   files and make library output impossible to capture deterministically.
//! - **L7** — no heap allocation (`Vec::new` / `vec!` / `Box::new` /
//!   `.clone()`) in the per-step hot-path modules (the adaptive L3
//!   victim/replacement path, the LRU recency structures, the
//!   out-of-order core's step functions). These run once per simulated
//!   access or cycle; a single allocation there costs more than the
//!   whole lookup it serves, and the PR that removed them is the one
//!   that made billion-cycle runs tractable. Cold paths inside those
//!   files (constructors, audits, snapshots) carry inline
//!   `lint:allow(L7)` markers with justifications.

use std::fmt;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Panic-freedom in simulator code.
    L1,
    /// Determinism: no hash-ordered containers in simulator state.
    L2,
    /// Cast safety in statistics paths.
    L3,
    /// Doc coverage of the partitioning core's public API.
    L4,
    /// Determinism: no threads outside the sanctioned parallel runner.
    L5,
    /// No print macros outside binaries/examples and exempt modules.
    L6,
    /// No heap allocation in per-step hot-path modules.
    L7,
}

impl Rule {
    /// Short name as written in `lint.toml` and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
        }
    }

    /// Parses a rule name from allowlist text.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "L1" => Some(Rule::L1),
            "L2" => Some(Rule::L2),
            "L3" => Some(Rule::L3),
            "L4" => Some(Rule::L4),
            "L5" => Some(Rule::L5),
            "L6" => Some(Rule::L6),
            "L7" => Some(Rule::L7),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, anchored to a repo-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation of the finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// Which parts of the tree each rule applies to. Paths are repo-relative
/// with forward slashes; prefixes end in `/` except exact-file entries.
#[derive(Debug, Clone)]
pub struct Scopes {
    /// L1/L2: production source of the simulation crates.
    pub sim_prefixes: Vec<String>,
    /// L3: statistics/counter files (exact paths). Extendable from
    /// `lint.toml` via `stats-path` lines.
    pub stats_files: Vec<String>,
    /// L4: prefixes/exact files whose `pub fn`s must be documented.
    pub doc_paths: Vec<String>,
    /// L5: exact files allowed to spawn threads (the sanctioned runner).
    pub runner_files: Vec<String>,
    /// L6: exact non-binary files allowed to print (e.g. the vendored
    /// Criterion shim, whose whole job is terminal reporting).
    pub print_files: Vec<String>,
    /// L7: exact files whose non-test code is a per-step hot path and
    /// must stay allocation-free. Extendable from `lint.toml` via
    /// `hot-path` lines.
    pub hot_files: Vec<String>,
}

impl Default for Scopes {
    fn default() -> Self {
        Scopes {
            sim_prefixes: vec![
                "crates/simcore/src/".to_string(),
                "crates/cachesim/src/".to_string(),
                "crates/cpusim/src/".to_string(),
                "crates/memsim/src/".to_string(),
                "crates/core/src/".to_string(),
                "src/".to_string(),
            ],
            stats_files: vec!["crates/simcore/src/stats.rs".to_string()],
            doc_paths: vec![
                "crates/core/src/l3/".to_string(),
                "crates/core/src/engine.rs".to_string(),
            ],
            runner_files: vec!["crates/simcore/src/parallel.rs".to_string()],
            print_files: vec!["crates/criterion/src/lib.rs".to_string()],
            hot_files: vec![
                "crates/core/src/l3/adaptive.rs".to_string(),
                "crates/cachesim/src/lru.rs".to_string(),
                "crates/cpusim/src/core.rs".to_string(),
            ],
        }
    }
}

impl Scopes {
    fn in_sim(&self, rel: &str) -> bool {
        self.sim_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }

    fn in_stats(&self, rel: &str) -> bool {
        self.stats_files.iter().any(|p| p == rel)
    }

    fn in_doc(&self, rel: &str) -> bool {
        self.doc_paths
            .iter()
            .any(|p| rel == p || (p.ends_with('/') && rel.starts_with(p.as_str())))
    }

    fn is_runner(&self, rel: &str) -> bool {
        self.runner_files.iter().any(|p| p == rel)
    }

    fn in_hot(&self, rel: &str) -> bool {
        self.hot_files.iter().any(|p| p == rel)
    }

    /// Files where printing is structurally fine: binary sources, any
    /// `main.rs`, examples, plus the explicit `print_files` exemptions.
    fn may_print(&self, rel: &str) -> bool {
        rel.starts_with("src/bin/")
            || rel.contains("/src/bin/")
            || rel.starts_with("examples/")
            || rel.contains("/examples/")
            || rel.ends_with("/main.rs")
            || rel == "main.rs"
            || self.print_files.iter().any(|p| p == rel)
    }
}

/// Integer types an `as` cast may silently truncate into.
const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Float-producing method calls whose result must not be `as`-cast to a
/// 64-bit integer (use `try_into` on a checked intermediate instead).
const FLOAT_PRODUCERS: [&str; 4] = [".ceil()", ".floor()", ".round()", ".trunc()"];

/// Runs all rules over one file. `raw` is the original source, `sanitized`
/// the comment/string-blanked twin, `mask[i]` is true when line `i` is test
/// code.
pub fn check_file(
    rel: &str,
    raw: &str,
    sanitized: &str,
    mask: &[bool],
    scopes: &Scopes,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let raw_lines: Vec<&str> = raw.lines().collect();
    let san_lines: Vec<&str> = sanitized.lines().collect();

    let sim = scopes.in_sim(rel);
    let stats = scopes.in_stats(rel);
    let doc = scopes.in_doc(rel);
    // L5 is repo-wide: every scanned file except the sanctioned runner.
    let l5 = !scopes.is_runner(rel);
    // L6 is repo-wide: every scanned file except binaries/examples and
    // the explicit print exemptions.
    let l6 = !scopes.may_print(rel);
    let hot = scopes.in_hot(rel);
    if !sim && !stats && !doc && !l5 && !l6 && !hot {
        return out;
    }

    for (idx, san) in san_lines.iter().enumerate() {
        let line_no = idx + 1;
        let in_test = mask.get(idx).copied().unwrap_or(false);
        let raw_line = raw_lines.get(idx).copied().unwrap_or("");

        if sim && !in_test {
            if !inline_allowed(raw_line, Rule::L1) {
                for (pat, what) in [
                    (".unwrap()", "unwrap()"),
                    (".expect(", "expect()"),
                    ("panic!", "panic!"),
                    ("unreachable!", "unreachable!"),
                ] {
                    if contains_token(san, pat) {
                        out.push(Diagnostic {
                            rule: Rule::L1,
                            file: rel.to_string(),
                            line: line_no,
                            message: format!(
                                "{what} in non-test simulator code; return a Result/Option or justify in lint.toml"
                            ),
                        });
                    }
                }
            }
            if !inline_allowed(raw_line, Rule::L2) {
                for ty in ["HashMap", "HashSet"] {
                    if contains_token(san, ty) {
                        out.push(Diagnostic {
                            rule: Rule::L2,
                            file: rel.to_string(),
                            line: line_no,
                            message: format!(
                                "{ty} in simulator code: iteration order is nondeterministic; use BTreeMap/BTreeSet or a Vec"
                            ),
                        });
                    }
                }
            }
        }

        if l5 && !in_test && !inline_allowed(raw_line, Rule::L5) {
            for pat in ["thread::spawn", "thread::scope"] {
                if contains_token(san, pat) {
                    out.push(Diagnostic {
                        rule: Rule::L5,
                        file: rel.to_string(),
                        line: line_no,
                        message: format!(
                            "{pat} outside the sanctioned runner; route parallelism through simcore::parallel so results stay deterministic"
                        ),
                    });
                }
            }
        }

        if l6 && !in_test && !inline_allowed(raw_line, Rule::L6) {
            for pat in ["println!", "eprintln!"] {
                if contains_token(san, pat) {
                    out.push(Diagnostic {
                        rule: Rule::L6,
                        file: rel.to_string(),
                        line: line_no,
                        message: format!(
                            "{pat} in library code; report through return values or telemetry — printing belongs to src/bin/ binaries"
                        ),
                    });
                }
            }
        }

        if hot && !in_test && !inline_allowed(raw_line, Rule::L7) {
            for (pat, what) in [
                ("Vec::new", "Vec::new"),
                ("vec!", "vec!"),
                ("Box::new", "Box::new"),
                (".clone()", "clone()"),
                (".to_vec()", "to_vec()"),
            ] {
                if contains_token(san, pat) {
                    out.push(Diagnostic {
                        rule: Rule::L7,
                        file: rel.to_string(),
                        line: line_no,
                        message: format!(
                            "{what} in a per-step hot path; preallocate in the constructor or justify a cold path with lint:allow(L7)"
                        ),
                    });
                }
            }
        }

        if stats && !in_test && !inline_allowed(raw_line, Rule::L3) {
            for msg in narrowing_casts(san) {
                out.push(Diagnostic {
                    rule: Rule::L3,
                    file: rel.to_string(),
                    line: line_no,
                    message: msg,
                });
            }
        }

        if doc
            && !in_test
            && is_pub_fn(san)
            && !inline_allowed(raw_line, Rule::L4)
            && !has_doc_above(&raw_lines, idx)
        {
            out.push(Diagnostic {
                rule: Rule::L4,
                file: rel.to_string(),
                line: line_no,
                message: format!(
                    "undocumented pub fn `{}`; add a /// doc comment",
                    fn_name(san)
                ),
            });
        }
    }
    out
}

/// `// lint:allow(L1): reason` on the offending line suppresses that rule
/// there. Checked against the raw line, since the marker lives in a comment.
fn inline_allowed(raw_line: &str, rule: Rule) -> bool {
    raw_line.contains(&format!("lint:allow({})", rule.name()))
}

/// Substring match requiring a non-identifier character before the match,
/// so `a_panic!` or `MyHashMapLike` prefixes don't fire spuriously. The
/// boundary check only applies to patterns that start with an identifier
/// character — `.unwrap()` legitimately follows an identifier.
fn contains_token(line: &str, pat: &str) -> bool {
    let pat_starts_ident = pat
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    let mut from = 0;
    while let Some(pos) = line.get(from..).and_then(|s| s.find(pat)) {
        let at = from + pos;
        let prev_ident = pat_starts_ident
            && at > 0
            && line
                .get(..at)
                .and_then(|s| s.chars().next_back())
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if !prev_ident {
            return true;
        }
        from = at + pat.len();
    }
    false
}

/// Finds `as <narrow-int>` casts and `.ceil()/.floor()/... as u64/i64`
/// float-to-int casts on a sanitized line.
fn narrowing_casts(san: &str) -> Vec<String> {
    let mut msgs = Vec::new();
    let bytes = san.as_bytes();
    let mut from = 0;
    while let Some(pos) = san.get(from..).and_then(|s| s.find("as")) {
        let at = from + pos;
        from = at + 2;
        // standalone word `as`
        let before_ok = at == 0
            || bytes
                .get(at - 1)
                .is_some_and(|b| !(b.is_ascii_alphanumeric() || *b == b'_'));
        let after_ok = bytes
            .get(at + 2)
            .is_none_or(|b| !(b.is_ascii_alphanumeric() || *b == b'_'));
        if !before_ok || !after_ok {
            continue;
        }
        let rest = san.get(at + 2..).unwrap_or("").trim_start();
        let target: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if NARROW_TARGETS.contains(&target.as_str()) {
            msgs.push(format!(
                "narrowing `as {target}` cast in a statistics path; use try_into() or a saturating conversion"
            ));
        } else if (target == "u64" || target == "i64")
            && san.get(..at).is_some_and(|prefix| {
                let p = prefix.trim_end();
                FLOAT_PRODUCERS.iter().any(|f| p.ends_with(f))
            })
        {
            msgs.push(format!(
                "float-to-int `as {target}` cast in a statistics path; bound the value and use try_into()"
            ));
        }
    }
    msgs
}

fn is_pub_fn(san: &str) -> bool {
    let t = san.trim_start();
    t.starts_with("pub fn ") || t.starts_with("pub const fn ")
}

fn fn_name(san: &str) -> String {
    let t = san.trim_start();
    let after = t
        .strip_prefix("pub const fn ")
        .or_else(|| t.strip_prefix("pub fn "))
        .unwrap_or(t);
    after
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect()
}

/// Walks upward from the `pub fn` line over attribute lines looking for a
/// `///` or `#[doc...]` comment directly above the item.
fn has_doc_above(raw_lines: &[&str], fn_idx: usize) -> bool {
    let mut i = fn_idx;
    while i > 0 {
        i -= 1;
        let t = raw_lines.get(i).map_or("", |l| l.trim());
        if t.starts_with("#[") && !t.starts_with("#[doc") {
            continue; // ordinary attribute between doc comment and fn
        }
        return t.starts_with("///") || t.starts_with("#[doc") || t.ends_with("*/");
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::sanitize;
    use crate::scope::test_line_mask;

    fn check(rel: &str, src: &str) -> Vec<Diagnostic> {
        let san = sanitize(src);
        let mask = test_line_mask(&san);
        check_file(rel, src, &san, &mask, &Scopes::default())
    }

    #[test]
    fn l1_flags_unwrap_in_sim_code() {
        let d = check("crates/core/src/l3/adaptive.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::L1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn l1_ignores_tests_and_foreign_paths() {
        let src = "#[cfg(test)]\nmod t {\n fn f() { x.unwrap(); }\n}\n";
        assert!(check("crates/core/src/l3/mod.rs", src).is_empty());
        let d = check("crates/tracegen/src/lib.rs", "fn f() { x.unwrap(); }\n");
        assert!(d.is_empty(), "tracegen is outside the sim scope");
    }

    #[test]
    fn l1_ignores_unwrap_or_variants() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_default(); z.unwrap_or_else(|| 1); }\n";
        assert!(check("crates/core/src/cmp.rs", src).is_empty());
    }

    #[test]
    fn l1_flags_panic_and_unreachable() {
        let d = check(
            "crates/cachesim/src/cache.rs",
            "fn f() { panic!(\"boom\"); }\nfn g() { unreachable!() }\n",
        );
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn l1_inline_allow_suppresses() {
        let src = "fn f() { x.unwrap(); } // lint:allow(L1): startup-only path\n";
        assert!(check("crates/core/src/cmp.rs", src).is_empty());
    }

    #[test]
    fn l2_flags_hashmap() {
        let d = check(
            "crates/cpusim/src/tlb.rs",
            "use std::collections::HashMap;\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::L2);
    }

    #[test]
    fn l3_flags_narrowing_cast_in_stats() {
        let d = check(
            "crates/simcore/src/stats.rs",
            "fn f(v: u64) -> usize { v as usize }\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::L3);
    }

    #[test]
    fn l3_flags_float_round_to_u64() {
        let d = check(
            "crates/simcore/src/stats.rs",
            "fn f(x: f64) -> u64 { (x * 2.0).ceil() as u64 }\n",
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn l3_allows_widening_and_words_containing_as() {
        let src = "fn f(v: u32) -> u64 { v as u64 }\nfn base(assign: u64) -> u64 { assign }\n";
        assert!(check("crates/simcore/src/stats.rs", src).is_empty());
    }

    #[test]
    fn l4_flags_undocumented_pub_fn() {
        let d = check(
            "crates/core/src/engine.rs",
            "pub fn quota(&self) -> usize { 0 }\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::L4);
        assert!(d[0].message.contains("quota"));
    }

    #[test]
    fn l4_accepts_doc_comment_with_attributes_between() {
        let src = "/// Returns the quota.\n#[must_use]\npub fn quota(&self) -> usize { 0 }\n";
        assert!(check("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn l5_flags_threads_outside_the_runner() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let d = check("crates/bench/src/figures.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::L5);
        let d = check(
            "crates/core/src/experiment.rs",
            "fn f() { thread::scope(|s| {}); }\n",
        );
        assert_eq!(d.iter().filter(|d| d.rule == Rule::L5).count(), 1);
    }

    #[test]
    fn l5_allows_the_sanctioned_runner_and_tests() {
        let src = "fn f() { std::thread::scope(|s| {}); }\n";
        assert!(check("crates/simcore/src/parallel.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod t {\n fn f() { std::thread::spawn(|| {}); }\n}\n";
        assert!(check("crates/bench/src/lib.rs", test_src).is_empty());
    }

    #[test]
    fn l6_flags_prints_in_library_code() {
        let d = check(
            "crates/core/src/experiment.rs",
            "fn f() { println!(\"{}\", 1); }\nfn g() { eprintln!(\"oops\"); }\n",
        );
        let l6: Vec<_> = d.iter().filter(|d| d.rule == Rule::L6).collect();
        assert_eq!(l6.len(), 2);
        assert_eq!(l6[0].line, 1);
        assert!(l6[1].message.contains("eprintln!"));
    }

    #[test]
    fn l6_exempts_binaries_examples_and_listed_modules() {
        let src = "fn main() { println!(\"report\"); }\n";
        assert!(check("src/bin/nuca-sim.rs", src).is_empty());
        assert!(check("crates/bench/src/bin/fig6.rs", src).is_empty());
        assert!(check("crates/lint/src/main.rs", src).is_empty());
        assert!(check("examples/quickstart.rs", src).is_empty());
        assert!(check("crates/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l6_skips_tests_and_honors_inline_allow() {
        let test_src = "#[cfg(test)]\nmod t {\n fn f() { println!(\"dbg\"); }\n}\n";
        assert!(check("crates/bench/src/report.rs", test_src).is_empty());
        let allowed = "fn f() { println!(\"x\"); } // lint:allow(L6): legacy diagnostic\n";
        assert!(check("crates/bench/src/report.rs", allowed).is_empty());
        // A print inside a string literal is sanitized away.
        let in_string = "fn f() -> &'static str { \"println!(no)\" }\n";
        assert!(check("crates/bench/src/report.rs", in_string).is_empty());
    }

    #[test]
    fn l4_only_in_doc_scope() {
        let src = "pub fn helper() {}\n";
        assert!(check("crates/core/src/cmp.rs", src).is_empty());
        assert_eq!(check("crates/core/src/l3/shared.rs", src).len(), 1);
    }

    #[test]
    fn l7_flags_allocation_in_hot_paths() {
        let d = check(
            "crates/core/src/l3/adaptive.rs",
            "fn f() { let v: Vec<u8> = Vec::new(); }\nfn g() { let b = Box::new(1); }\n",
        );
        let l7: Vec<_> = d.iter().filter(|d| d.rule == Rule::L7).collect();
        assert_eq!(l7.len(), 2);
        assert!(l7[0].message.contains("Vec::new"));
        let d = check(
            "crates/cachesim/src/lru.rs",
            "fn f(x: &S) -> S { x.clone() }\n",
        );
        assert_eq!(d.iter().filter(|d| d.rule == Rule::L7).count(), 1);
        let d = check(
            "crates/cpusim/src/core.rs",
            "fn f() { let v = vec![0; 4]; }\n",
        );
        assert_eq!(d.iter().filter(|d| d.rule == Rule::L7).count(), 1);
    }

    #[test]
    fn l7_only_in_hot_scope_and_honors_allow() {
        let src = "fn f() { let v: Vec<u8> = Vec::new(); }\n";
        assert!(check("crates/core/src/cmp.rs", src)
            .iter()
            .all(|d| d.rule != Rule::L7));
        let allowed = "fn f() { let v = vec![0; 4]; } // lint:allow(L7): constructor\n";
        assert!(check("crates/cpusim/src/core.rs", allowed).is_empty());
        let test_src = "#[cfg(test)]\nmod t {\n fn f() { let v = vec![1]; }\n}\n";
        assert!(check("crates/cachesim/src/lru.rs", test_src).is_empty());
    }
}
