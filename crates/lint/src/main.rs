//! CLI for the nuca-lint static-analysis pass.
//!
//! ```text
//! cargo run -p nuca-lint -- check [--json] [--stale-allowlist]
//!                                 [--root DIR] [--allowlist FILE]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
nuca-lint: static analysis for the NUCA simulator workspace

USAGE:
    nuca-lint check [OPTIONS]

OPTIONS:
    --json              emit machine-readable JSON (schema v2)
    --stale-allowlist   also fail on lint.toml entries or inline
                        lint:allow(...) markers that suppress nothing
    --root DIR          repository root to scan (default: autodetected)
    --allowlist FILE    allowlist file (default: <root>/lint.toml)
    -h, --help          show this help

RULES:
    L1  no unwrap()/expect()/panic!/unreachable! in non-test simulator code
    L2  no HashMap/HashSet in simulator state (nondeterministic iteration)
    L3  no bare `as` narrowing casts in statistics/counter paths
    L4  every pub fn in crates/core/src/l3/ and engine.rs has a doc comment
    L5  no thread::spawn/scope outside crates/simcore/src/parallel/mod.rs
    L6  no println!/eprintln! outside binaries, examples and exempt modules
    L7  no heap allocation (Vec::new/vec!/Box::new/clone()) in per-step hot paths
    D1  no clock/env/randomness/host-parallelism/hash-order in sim crates
    D2  cycle arithmetic: guarded subtraction, bounded narrowing casts
    D3  telemetry emitters are generic over Sink, never hardwire Recorder
    D4  hot-path allocation audit extended one call level deep

EXIT CODES:
    0 clean    1 violations    2 usage or I/O error
";

struct Args {
    json: bool,
    stale: bool,
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut it = argv.iter();
    let Some(cmd) = it.next() else {
        return Err("missing subcommand (expected `check`)".to_string());
    };
    if cmd == "-h" || cmd == "--help" {
        return Ok(None);
    }
    if cmd != "check" {
        return Err(format!("unknown subcommand `{cmd}` (expected `check`)"));
    }
    let mut args = Args {
        json: false,
        stale: false,
        root: None,
        allowlist: None,
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--stale-allowlist" => args.stale = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--allowlist" => {
                let v = it.next().ok_or("--allowlist needs a file argument")?;
                args.allowlist = Some(PathBuf::from(v));
            }
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Some(args))
}

/// Repo root: `--root`, else the workspace root two levels above this
/// crate's manifest, else the current directory.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("nuca-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = args.root.unwrap_or_else(default_root);
    match nuca_lint::run_check(&root, args.allowlist.as_deref()) {
        Ok(report) => {
            if args.json {
                print!("{}", nuca_lint::render_json(&report));
            } else {
                print!("{}", nuca_lint::render_text(&report, args.stale));
            }
            let dirty = !report.diagnostics.is_empty()
                || (args.stale
                    && (!report.stale_markers.is_empty() || !report.stale_entries.is_empty()));
            if dirty {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("nuca-lint: {e}");
            ExitCode::from(2)
        }
    }
}
