//! Source sanitizer: blanks out comments, string/char literals and raw
//! strings so the rule matchers never fire on text inside them.
//!
//! The output has exactly the same length and line structure as the input
//! (every masked byte becomes a space, newlines are preserved), so byte and
//! line positions in the sanitized text map 1:1 onto the original file.

/// Lexer state while scanning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Ordinary code.
    Code,
    /// `//` comment until end of line.
    LineComment,
    /// `/* ... */` comment; the payload is the nesting depth.
    BlockComment(u32),
    /// `"..."` string literal.
    Str,
    /// `r##"..."##` raw string; the payload is the hash count.
    RawStr(u8),
    /// `'x'` char or `b'x'` byte literal.
    CharLit,
}

/// Returns `source` with comment and literal contents replaced by spaces.
pub fn sanitize(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut state = State::Code;
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    blank(&mut out, i);
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    blank(&mut out, i);
                    blank(&mut out, i + 1);
                    i += 1;
                } else if b == b'"' {
                    state = State::Str;
                    blank(&mut out, i);
                } else if let Some(hashes) = raw_string_prefix(bytes, i) {
                    // Skip the prefix (r/br + hashes + quote), blanking it.
                    let prefix_len = raw_prefix_len(bytes, i);
                    for j in i..i + prefix_len {
                        blank(&mut out, j);
                    }
                    i += prefix_len - 1;
                    state = State::RawStr(hashes);
                } else if b == b'\'' && !is_lifetime(bytes, i) {
                    state = State::CharLit;
                    blank(&mut out, i);
                } else if b == b'b' && !prev_is_ident(bytes, i) && bytes.get(i + 1) == Some(&b'\'')
                {
                    // b'x' byte literal: blank the prefix, enter char state.
                    blank(&mut out, i);
                    blank(&mut out, i + 1);
                    i += 1;
                    state = State::CharLit;
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                } else {
                    blank(&mut out, i);
                }
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    blank(&mut out, i);
                    blank(&mut out, i + 1);
                    i += 1;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    blank(&mut out, i);
                    blank(&mut out, i + 1);
                    i += 1;
                    state = State::BlockComment(depth + 1);
                } else {
                    blank(&mut out, i);
                }
            }
            State::Str => {
                blank(&mut out, i);
                if b == b'\\' {
                    if let Some(j) = out.get_mut(i + 1) {
                        if *j != b'\n' {
                            *j = b' ';
                        }
                    }
                    i += 1;
                } else if b == b'"' {
                    state = State::Code;
                }
            }
            State::RawStr(hashes) => {
                blank(&mut out, i);
                if b == b'"' && closes_raw(bytes, i, hashes) {
                    for j in 0..usize::from(hashes) {
                        blank(&mut out, i + 1 + j);
                    }
                    i += usize::from(hashes);
                    state = State::Code;
                }
            }
            State::CharLit => {
                blank(&mut out, i);
                if b == b'\\' {
                    if let Some(j) = out.get_mut(i + 1) {
                        if *j != b'\n' {
                            *j = b' ';
                        }
                    }
                    i += 1;
                } else if b == b'\'' {
                    state = State::Code;
                }
            }
        }
        i += 1;
    }

    // Every replaced byte is an ASCII space and untouched bytes came from a
    // valid str, so the buffer is valid UTF-8; fall back to lossy to keep
    // this path panic-free regardless.
    String::from_utf8_lossy(&out).into_owned()
}

fn blank(out: &mut [u8], i: usize) {
    if let Some(b) = out.get_mut(i) {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0
        && bytes
            .get(i - 1)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
}

/// If position `i` starts a raw-string prefix (`r"`, `r#"`, `br##"`, ...),
/// returns the hash count.
fn raw_string_prefix(bytes: &[u8], i: usize) -> Option<u8> {
    if prev_is_ident(bytes, i) {
        return None;
    }
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u8;
    while bytes.get(j) == Some(&b'#') {
        hashes = hashes.saturating_add(1);
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// Length of the raw-string prefix starting at `i` (caller has verified it
/// exists): optional `b`, `r`, hashes, opening quote.
fn raw_prefix_len(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    j += 1; // r
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    j + 1 - i // closing quote of the prefix
}

fn closes_raw(bytes: &[u8], i: usize, hashes: u8) -> bool {
    (0..usize::from(hashes)).all(|k| bytes.get(i + 1 + k) == Some(&b'#'))
}

/// A `'` starts a lifetime (not a char literal) when it is followed by an
/// identifier that is not closed by another `'` right after one character.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(&c) if c.is_ascii_alphabetic() || c == b'_' => {
            // 'a' is a char literal; 'a>, 'a, and 'a  are lifetimes.
            bytes.get(i + 2) != Some(&b'\'')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let s = sanitize("let x = 1; // panic!(\"no\")\nlet y = 2;");
        assert!(!s.contains("panic"));
        assert!(s.contains("let x = 1;"));
        assert!(s.contains("let y = 2;"));
    }

    #[test]
    fn doc_comments_with_unwrap_are_blanked() {
        let s = sanitize("/// let a = f().unwrap();\nfn g() {}\n");
        assert!(!s.contains("unwrap"));
        assert!(s.contains("fn g() {}"));
    }

    #[test]
    fn block_comments_nest() {
        let s = sanitize("a /* one /* two */ still */ b");
        assert!(s.starts_with('a'));
        assert!(s.ends_with('b'));
        assert!(!s.contains("still"));
    }

    #[test]
    fn strings_are_blanked_with_escapes() {
        let s = sanitize(r#"let m = "contains \" unwrap() inside"; x"#);
        assert!(!s.contains("unwrap"));
        assert!(s.ends_with("; x"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = sanitize(r###"let m = r#"panic!("x")"#; y"###);
        assert!(!s.contains("panic"));
        assert!(s.ends_with("; y"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = sanitize("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }");
        assert!(s.contains("fn f<'a>(x: &'a str)"), "lifetimes survive: {s}");
        assert!(!s.contains('"'), "quote char literal blanked: {s}");
    }

    #[test]
    fn byte_literals() {
        let s = sanitize("let b = b'x'; let bs = b\"panic!\"; z");
        assert!(!s.contains("panic"));
        assert!(s.ends_with("; z"));
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n\"two\nlines\"\nb\n";
        let s = sanitize(src);
        assert_eq!(s.lines().count(), src.lines().count());
        assert_eq!(s.len(), src.len());
    }
}
