//! Intraprocedural use-def analysis for the D2 cycle-arithmetic audit.
//!
//! D2 flags narrowing `as` casts of cycle/quota quantities — but a cast of
//! a value that is *provably bounded* inside the same function is fine and
//! must not fire. This module computes, per function body, the set of
//! locals whose defining expression bounds them:
//!
//! - `let w = cycle % WAYS;` — remainder bounds the value,
//! - `let n = quota.min(cap);` — `min` against anything bounds it,
//! - `let m = cycle & 0xff;` — masking with a literal/constant bounds it,
//! - `let k = 3;` — literals are bounded,
//! - `let j = w;` — copies of bounded locals stay bounded (computed to a
//!   fixpoint so chains resolve in any order).
//!
//! Reassigning a bounded local from an unbounded expression (`w = cycle;`)
//! removes it from the set — the walk is conservative: a name is bounded
//! only if **every** definition seen in the body bounds it.
//!
//! The same machinery answers "is this subtraction guarded": D2 accepts a
//! raw `a - b` on cycle quantities when the body contains an explicit
//! ordering comparison between the operands before the subtraction (the
//! idiomatic `if a >= b { a - b }` shape); everything else must use
//! `saturating_sub`/`checked_sub`.

use std::collections::BTreeSet;

use crate::syntax::FileIndex;

/// Operators/calls whose result is considered bounded for D2 purposes.
fn expr_is_bounding(file: &FileIndex, expr: (usize, usize)) -> bool {
    let (start, end) = expr;
    let mut i = start;
    while i < end {
        let t = file.ctext(i);
        match t {
            "%" => return true,
            "&" => {
                // Masking: `x & LITERAL` or `x & CONST` (by convention,
                // SCREAMING_CASE). A unary borrow `&x` does not bound.
                let prevs = i > start
                    && (matches!(
                        file.ckind(i - 1),
                        crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::Num
                    ) || file.ctext(i - 1) == ")");
                let next = file.ctext(i + 1);
                let next_is_mask = file.ckind(i + 1) == crate::lexer::TokenKind::Num
                    || (!next.is_empty()
                        && next
                            .chars()
                            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'));
                if prevs && next_is_mask {
                    return true;
                }
            }
            // `.min(...)` method call.
            "min" if i > start && file.ctext(i - 1) == "." && file.ctext(i + 1) == "(" => {
                return true;
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// Whether the expression is a bare numeric literal (with optional cast
/// chain or parens) — trivially bounded.
fn expr_is_literal(file: &FileIndex, expr: (usize, usize)) -> bool {
    let (start, end) = expr;
    (start..end).all(|i| {
        matches!(file.ckind(i), crate::lexer::TokenKind::Num)
            || matches!(
                file.ctext(i),
                "(" | ")" | "as" | "u8" | "u16" | "u32" | "u64" | "usize"
            )
    }) && (start..end).any(|i| matches!(file.ckind(i), crate::lexer::TokenKind::Num))
}

/// Whether the expression is a single identifier (with optional cast),
/// returning it — used to propagate boundedness through copies.
fn expr_single_ident(file: &FileIndex, expr: (usize, usize)) -> Option<String> {
    let (start, end) = expr;
    if end <= start {
        return None;
    }
    if file.ckind(start) != crate::lexer::TokenKind::Ident {
        return None;
    }
    let name = file.ctext(start).to_string();
    // Allow a trailing `as <ty>` chain, nothing else.
    let mut i = start + 1;
    while i < end {
        if file.ctext(i) == "as" && file.ckind(i + 1) == crate::lexer::TokenKind::Ident {
            i += 2;
        } else {
            return None;
        }
    }
    Some(name)
}

/// Bounded-locals result for one function body.
#[derive(Debug, Clone, Default)]
pub struct Bounds {
    bounded: BTreeSet<String>,
}

impl Bounds {
    /// Whether local `name` is bounded at every definition in the body.
    pub fn is_bounded(&self, name: &str) -> bool {
        self.bounded.contains(name)
    }
}

/// One definition site: `let [mut] name = expr;` or `name = expr;`.
struct Def {
    name: String,
    expr: (usize, usize),
}

/// Collects definitions in a body span (code positions, inclusive braces).
fn collect_defs(file: &FileIndex, body: (usize, usize)) -> Vec<Def> {
    let (open, close) = body;
    let mut out = Vec::new();
    let mut i = open;
    while i < close {
        // `let [mut] name [: ty] = expr` — find the `=` then the `;` at
        // the same depth.
        let is_let = file.ctext(i) == "let";
        let is_reassign = file.ckind(i) == crate::lexer::TokenKind::Ident
            && file.ctext(i + 1) == "="
            && file.ctext(i + 2) != "="
            && (i == open || matches!(file.ctext(i - 1), "{" | "}" | ";"));
        if is_let {
            let mut j = i + 1;
            if file.ctext(j) == "mut" {
                j += 1;
            }
            if file.ckind(j) != crate::lexer::TokenKind::Ident {
                i += 1;
                continue; // destructuring lets are not tracked
            }
            let name = file.ctext(j).to_string();
            // Find `=` before the terminating `;` (skip type ascription).
            let mut k = j + 1;
            let mut depth = 0i64;
            let mut eq = None;
            while k < close {
                match file.ctext(k) {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    "=" if depth <= 0 && file.ctext(k + 1) != "=" => {
                        eq = Some(k);
                        break;
                    }
                    ";" if depth <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if let Some(eq) = eq {
                let end = stmt_end(file, eq + 1, close);
                out.push(Def {
                    name,
                    expr: (eq + 1, end),
                });
                i = end;
                continue;
            }
        } else if is_reassign {
            let name = file.ctext(i).to_string();
            let end = stmt_end(file, i + 2, close);
            out.push(Def {
                name,
                expr: (i + 2, end),
            });
            i = end;
            continue;
        }
        i += 1;
    }
    out
}

/// Scans forward from `from` to the `;` terminating the statement (at
/// bracket depth 0), bounded by `close`.
fn stmt_end(file: &FileIndex, from: usize, close: usize) -> usize {
    let mut depth = 0i64;
    let mut k = from;
    while k < close {
        match file.ctext(k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    close
}

/// Computes the bounded-locals set for a body to a fixpoint.
pub fn bounded_locals(file: &FileIndex, body: (usize, usize)) -> Bounds {
    let defs = collect_defs(file, body);
    let mut bounded: BTreeSet<String> = BTreeSet::new();
    // Fixpoint: copies of bounded locals become bounded; a name with any
    // unbounding definition is excluded at the end.
    loop {
        let mut changed = false;
        for d in &defs {
            if bounded.contains(&d.name) {
                continue;
            }
            let is_b = expr_is_bounding(file, d.expr)
                || expr_is_literal(file, d.expr)
                || expr_single_ident(file, d.expr)
                    .is_some_and(|src_name| bounded.contains(&src_name));
            if is_b {
                bounded.insert(d.name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Conservative pass: drop names that also have an unbounding def.
    for d in &defs {
        let is_b = expr_is_bounding(file, d.expr)
            || expr_is_literal(file, d.expr)
            || expr_single_ident(file, d.expr).is_some_and(|n| bounded.contains(&n));
        if !is_b {
            bounded.remove(&d.name);
        }
    }
    Bounds { bounded }
}

/// Whether the body contains an explicit ordering comparison mentioning
/// both `a` and `b` (identifier text) in a small window around a `<`, `>`,
/// `<=` or `>=` token at a code position strictly before `before`.
///
/// This is the guard shape D2 accepts for a raw subtraction:
/// `if wake >= cycle { wake - cycle }` (any direction, including
/// `debug_assert!(a >= b)`). The window is ±6 code tokens, wide enough for
/// `self.`-qualified paths and `as` casts on either side.
pub fn comparison_guard(
    file: &FileIndex,
    body: (usize, usize),
    before: usize,
    a: &str,
    b: &str,
) -> bool {
    let (open, _) = body;
    let end = before.min(file.code.len());
    for i in open..end {
        let t = file.ctext(i);
        if t != "<" && t != ">" {
            continue;
        }
        // Skip generics-ish positions: `Vec<u64>` — require the window to
        // contain both operand idents, which generic params won't.
        let lo = i.saturating_sub(6).max(open);
        let hi = (i + 7).min(end);
        let mut saw_a = false;
        let mut saw_b = false;
        for j in lo..hi {
            let u = file.ctext(j);
            if u == a {
                saw_a = true;
            }
            if u == b {
                saw_b = true;
            }
        }
        if saw_a && saw_b {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::FileIndex;

    fn body_of(src: &str) -> (FileIndex, (usize, usize)) {
        let f = FileIndex::build("crates/simcore/src/x.rs", src);
        let body = f.fns.first().and_then(|x| x.body).expect("fn body");
        (f, body)
    }

    #[test]
    fn modulo_min_mask_and_literal_bound() {
        let (f, b) = body_of(
            "fn f(cycle: u64, cap: u64) {\n let w = cycle % 16;\n let m = cycle & 0xff;\n let n = cycle.min(cap);\n let k = 3;\n let raw = cycle;\n}\n",
        );
        let bounds = bounded_locals(&f, b);
        assert!(bounds.is_bounded("w"));
        assert!(bounds.is_bounded("m"));
        assert!(bounds.is_bounded("n"));
        assert!(bounds.is_bounded("k"));
        assert!(!bounds.is_bounded("raw"));
    }

    #[test]
    fn copies_propagate_and_reassignment_unbounds() {
        let (f, b) = body_of(
            "fn f(cycle: u64) {\n let w = cycle % 16;\n let v = w;\n let u = v as u32;\n let mut t = cycle % 4;\n t = cycle;\n}\n",
        );
        let bounds = bounded_locals(&f, b);
        assert!(bounds.is_bounded("v"), "copy of bounded is bounded");
        assert!(bounds.is_bounded("u"), "cast copy stays bounded");
        assert!(!bounds.is_bounded("t"), "unbounded reassignment wins");
    }

    #[test]
    fn borrow_does_not_bound() {
        let (f, b) = body_of("fn f(cycle: u64) {\n let r = &cycle;\n}\n");
        let bounds = bounded_locals(&f, b);
        assert!(!bounds.is_bounded("r"));
    }

    #[test]
    fn guard_detection() {
        let (f, b) = body_of(
            "fn f(wake: u64, cycle: u64) -> u64 {\n if wake >= cycle {\n  wake - cycle\n } else {\n  0\n }\n}\n",
        );
        // Find the `-` position.
        let minus = (b.0..b.1)
            .find(|&i| f.ctext(i) == "-")
            .expect("minus token");
        assert!(comparison_guard(&f, b, minus, "wake", "cycle"));
        assert!(!comparison_guard(&f, b, minus, "wake", "quota"));
    }
}
