//! The cycle-driven out-of-order core model.
//!
//! A simplified but faithful rendition of SimpleScalar's RUU machine with
//! the Table 1 parameters: 4-wide fetch/dispatch/issue/commit, a 128-entry
//! register update unit (reorder buffer), a 64-entry load/store queue,
//! functional-unit contention, a combined branch predictor whose
//! mispredictions cost 7 cycles of fetch, separate I/D TLBs, and
//! non-blocking L1/L2 caches with MSHR-based miss merging. Every L2 miss
//! is handed to a [`LastLevel`] organization.
//!
//! The model is trace-driven: micro-ops come from a
//! [`tracegen::TraceGenerator`], carrying dependency distances that the
//! scheduler honors, so IPC responds to memory latency exactly the way the
//! paper's evaluation requires (stalls overlap while the window lasts,
//! then the core drains).

pub mod functional;

use std::collections::VecDeque;

use cachesim::cache::Cache;
use cachesim::mshr::MshrFile;
use simcore::config::MachineConfig;
use simcore::stats::HitMiss;
use simcore::types::{Address, CoreId, Cycle};
use telemetry::{Event, NullSink, Sink};
use tracegen::op::{MicroOp, OpClass};
use tracegen::TraceGenerator;

use crate::branch::BranchPredictor;
use crate::fastpath::{self, FastPathStats};
use crate::l3iface::{DirectPort, L3Batch, L3Outcome, L3Source, LastLevel, WarmPort};
use crate::tlb::Tlb;

/// Number of L2 miss-status registers per core.
const MSHR_ENTRIES: usize = 16;
/// L1 data cache ports (concurrent memory issues per cycle).
const MEM_PORTS: usize = 2;
/// How far past the oldest unissued entry the scheduler looks each cycle.
const SCHED_WINDOW: usize = 32;
/// Ready-time ring size; must exceed RUU size + max dependency distance.
const RING: usize = 512;

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    class: OpClass,
    addr: Option<Address>,
    dep1: u64,
    dep2: u64,
    issued: bool,
    ready_at: Cycle,
    mispredicted: bool,
}

/// Aggregated statistics for one core over the measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Instructions committed.
    pub committed: u64,
    /// Cycles simulated in the window.
    pub cycles: u64,
    /// L1 instruction cache hits/misses.
    pub l1i: HitMiss,
    /// L1 data cache hits/misses.
    pub l1d: HitMiss,
    /// Unified L2 hits/misses.
    pub l2: HitMiss,
    /// Last-level accesses issued (primary L2 misses).
    pub l3_accesses: u64,
    /// Last-level accesses satisfied locally (private partition).
    pub l3_local_hits: u64,
    /// Last-level accesses satisfied remotely (shared/neighbor).
    pub l3_remote_hits: u64,
    /// Last-level accesses that went to main memory.
    pub l3_misses: u64,
    /// Branch predictions and mispredictions.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Data TLB misses.
    pub dtlb_misses: u64,
    /// Instruction TLB misses.
    pub itlb_misses: u64,
}

impl CoreStats {
    /// Instructions per cycle over the window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Last-level accesses per thousand cycles — the Figure 5 metric.
    pub fn l3_accesses_per_kilocycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.l3_accesses as f64 * 1000.0 / self.cycles as f64
        }
    }
}

/// One out-of-order core with its private L1I/L1D/L2 hierarchy.
///
/// The `S` parameter selects the telemetry sink for MSHR events; the
/// default [`NullSink`] compiles all emission sites away.
pub struct Core<S: Sink = NullSink> {
    id: CoreId,
    cfg: MachineConfig,
    gen: TraceGenerator,
    bp: BranchPredictor,
    itlb: Tlb,
    dtlb: Tlb,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    mshr: MshrFile,

    rob: VecDeque<RobEntry>,
    lsq_occupancy: usize,
    fetch_queue: VecDeque<(MicroOp, bool)>, // (op, mispredicted)
    next_seq: u64,
    /// Raw completion cycle per sequence number (mod RING); `u64::MAX`
    /// while in flight.
    ready_ring: Vec<u64>,
    fetch_resume_at: Cycle,
    /// Fetch is blocked until the mispredicted branch with this sequence
    /// number issues.
    waiting_branch: Option<u64>,
    /// Last instruction block fetched (I-side accesses happen per block).
    last_fetch_block: u64,

    committed: u64,
    window_start: Cycle,
    l3_accesses: u64,
    l3_local_hits: u64,
    l3_remote_hits: u64,
    l3_misses: u64,
    /// Whether the exact hit fast path (fused TLB+L1 probe/walk,
    /// memo-served lookups, warm trace decode, issue-scan hint) is
    /// enabled. Results are bit-identical either way; `--no-fast-path`
    /// clears it.
    fast_path: bool,
    /// Fast-path effectiveness counters (perf side channel only; never
    /// part of [`CoreStats`], traces or snapshots).
    fast: FastPathStats,
    /// Issue-scan hint: every ROB entry at an index below this is issued,
    /// so the oldest-unissued scan may start here. Maintained by
    /// commit/issue/drain; consulted only when `fast_path` is on.
    issue_hint: usize,
    sink: S,
}

impl<S: Sink> std::fmt::Debug for Core<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("app", &self.gen.profile().name)
            .field("committed", &self.committed)
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates an untraced core running the given trace.
    pub fn new(id: CoreId, cfg: &MachineConfig, gen: TraceGenerator) -> Self {
        Core::with_sink(id, cfg, gen, NullSink)
    }
}

impl<S: Sink> Core<S> {
    /// Creates a core emitting MSHR telemetry into `sink`.
    pub fn with_sink(id: CoreId, cfg: &MachineConfig, gen: TraceGenerator, sink: S) -> Self {
        Core {
            id,
            cfg: *cfg,
            gen,
            bp: BranchPredictor::new(cfg.branch),
            itlb: Tlb::new(cfg.tlb),
            dtlb: Tlb::new(cfg.tlb),
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            mshr: MshrFile::new(MSHR_ENTRIES),
            rob: VecDeque::with_capacity(cfg.pipeline.ruu_size),
            lsq_occupancy: 0,
            fetch_queue: VecDeque::with_capacity(cfg.pipeline.fetch_queue),
            next_seq: 1,
            ready_ring: vec![0; RING], // lint:allow(L7): constructor
            fetch_resume_at: Cycle::ZERO,
            waiting_branch: None,
            last_fetch_block: u64::MAX,
            committed: 0,
            window_start: Cycle::ZERO,
            l3_accesses: 0,
            l3_local_hits: 0,
            l3_remote_hits: 0,
            l3_misses: 0,
            fast_path: true,
            fast: FastPathStats::default(),
            issue_hint: 0,
            sink,
        }
    }

    /// Enables or disables the exact hit fast path on this core: the
    /// fused TLB+L1 probe/walk with its memos, warm trace decode, and
    /// the issue-scan hint. Disabled, every access runs the reference
    /// sequence; results are bit-identical in both modes, so this only
    /// exists as the `--no-fast-path` escape hatch the differential CI
    /// job flips.
    ///
    /// Slab (block) decode is deliberately *not* tied to this switch:
    /// measured on the warm path it costs ~20 ns/op net because decode
    /// is generate-then-copy — nothing amortizes — so the exact,
    /// pinned mechanism stays available through
    /// [`TraceGenerator::set_slab`] but off in production runs.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
        self.itlb.set_memo(enabled);
        self.dtlb.set_memo(enabled);
        self.l1i.set_memo(enabled);
        self.l1d.set_memo(enabled);
        self.l2.set_memo(enabled);
        if !enabled {
            self.gen.set_warm_decode(false);
        }
    }

    /// Fast-path effectiveness counters since the last statistics reset.
    pub fn fast_path_stats(&self) -> FastPathStats {
        self.fast
    }

    /// This core's identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The application this core runs.
    pub fn app_name(&self) -> &'static str {
        self.gen.profile().name
    }

    /// Instructions committed since the last statistics reset.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Resets the measurement window at `now`: committed-instruction and
    /// component statistics restart, architectural and learned state
    /// (caches, predictor, TLBs) is kept — this is the warm-up boundary.
    pub fn reset_stats(&mut self, now: Cycle) {
        self.committed = 0;
        self.window_start = now;
        self.l3_accesses = 0;
        self.l3_local_hits = 0;
        self.l3_remote_hits = 0;
        self.l3_misses = 0;
        self.bp.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.fast = FastPathStats::default();
    }

    /// Statistics for the window ending at `now`.
    pub fn stats(&self, now: Cycle) -> CoreStats {
        CoreStats {
            committed: self.committed,
            cycles: now.since(self.window_start),
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            l3_accesses: self.l3_accesses,
            l3_local_hits: self.l3_local_hits,
            l3_remote_hits: self.l3_remote_hits,
            l3_misses: self.l3_misses,
            branches: self.bp.predictions(),
            mispredicts: self.bp.mispredictions(),
            dtlb_misses: self.dtlb.misses(),
            itlb_misses: self.itlb.misses(),
        }
    }

    /// Whether the pipeline holds no in-flight state: nothing fetched,
    /// nothing in the ROB or MSHRs, no pending branch redirect. This is
    /// the only state in which the core can be snapshotted — functional
    /// warm-up never touches the pipeline, so the boundary right after
    /// [`warm_op`](Self::warm_op) runs qualifies by construction.
    pub fn is_quiescent(&self) -> bool {
        self.rob.is_empty()
            && self.fetch_queue.is_empty()
            && self.mshr.is_empty()
            && self.waiting_branch.is_none()
            && self.lsq_occupancy == 0
            && self.next_seq == 1
            && self.fetch_resume_at == Cycle::ZERO
    }

    /// Writes the learned state (trace generator, predictor, TLBs,
    /// caches, counters) to a snapshot. Pipeline structures are not
    /// encoded — the core must be quiescent (see
    /// [`is_quiescent`](Self::is_quiescent)).
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Mismatch`] when the core has
    /// in-flight pipeline state.
    pub fn save_state(
        &self,
        w: &mut simcore::snapshot::SnapshotWriter,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        if !self.is_quiescent() {
            return Err(simcore::snapshot::SnapshotError::Mismatch(
                "core pipeline not quiescent (snapshot only valid at the warm boundary)",
            ));
        }
        w.put_u8(self.id.asid());
        self.gen.save_state(w);
        self.bp.save_state(w);
        self.itlb.save_state(w);
        self.dtlb.save_state(w);
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        self.l2.save_state(w);
        w.put_u64(self.last_fetch_block);
        w.put_u64(self.committed);
        w.put_cycle(self.window_start);
        w.put_u64(self.l3_accesses);
        w.put_u64(self.l3_local_hits);
        w.put_u64(self.l3_remote_hits);
        w.put_u64(self.l3_misses);
        Ok(())
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// freshly constructed (quiescent) core.
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Mismatch`] when this core is
    /// not quiescent, has a different id, or any component's geometry
    /// differs from the snapshot.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        use simcore::snapshot::SnapshotError;
        if !self.is_quiescent() {
            return Err(SnapshotError::Mismatch(
                "cannot restore into a core with in-flight pipeline state",
            ));
        }
        if r.get_u8()? != self.id.asid() {
            return Err(SnapshotError::Mismatch("core id"));
        }
        self.gen.load_state(r)?;
        self.bp.load_state(r)?;
        self.itlb.load_state(r)?;
        self.dtlb.load_state(r)?;
        self.l1i.load_state(r)?;
        self.l1d.load_state(r)?;
        self.l2.load_state(r)?;
        self.last_fetch_block = r.get_u64()?;
        self.committed = r.get_u64()?;
        self.window_start = r.get_cycle()?;
        self.l3_accesses = r.get_u64()?;
        self.l3_local_hits = r.get_u64()?;
        self.l3_remote_hits = r.get_u64()?;
        self.l3_misses = r.get_u64()?;
        Ok(())
    }

    #[inline]
    fn dep_ready(&self, producer: u64, now: Cycle) -> bool {
        if producer == 0 {
            return true;
        }
        self.ready_ring[(producer as usize) % RING] <= now.raw()
    }

    /// Applies this core's address-space tag, leaving read-shared
    /// addresses untagged so every core references the same blocks.
    #[inline]
    fn tag_data_address(&self, addr: Address) -> Address {
        if tracegen::generator::is_shared_address(addr) {
            addr
        } else {
            addr.with_asid(self.id.asid())
        }
    }

    /// Executes one instruction *functionally*: caches, TLBs, predictor
    /// and the last-level organization see the access stream and update
    /// their state, but no pipeline timing is modeled. Used to warm large
    /// working sets cheaply before a timed measurement window, mirroring
    /// the paper's long fast-forward.
    pub fn warm_op(&mut self, now: Cycle, l3: &mut dyn LastLevel) {
        self.warm_op_port(now, &mut DirectPort { l3 });
    }

    /// [`warm_op`](Self::warm_op) with the L3-bound requests deferred
    /// into `batch` instead of served immediately. Safe because the warm
    /// path discards L3 timing and the private L1/L2 hierarchy never
    /// depends on an L3 outcome; the chip applies the batched outcomes to
    /// this core's counters via
    /// [`note_l3_outcome`](Self::note_l3_outcome) when it drains.
    pub fn warm_op_batched(&mut self, now: Cycle, batch: &mut L3Batch) {
        self.warm_op_port(now, batch);
    }

    fn warm_op_port(&mut self, now: Cycle, port: &mut impl WarmPort) {
        if self.fast_path {
            // Warm consumers read only pc/class/addr/taken; warm decode
            // skips the dependency-distance math while consuming the
            // identical RNG draws. Cheap flag compare once enabled.
            self.gen.set_warm_decode(true);
        }
        let mut op = self.gen.next_op();
        op.pc = op.pc.with_asid(self.id.asid());
        let block = op.pc.block(self.cfg.l1i.offset_bits()).raw();
        if block != self.last_fetch_block {
            self.last_fetch_block = block;
            let l1i_hit = if self.fast_path {
                // One probe per structure, hit or miss side committed in
                // place — no fallback re-walk on the miss-heavy stream.
                fastpath::functional_walk(&mut self.itlb, &mut self.l1i, op.pc, false)
            } else {
                self.itlb.access(op.pc);
                self.l1i.access(op.pc, false, self.id).is_hit()
            };
            if l1i_hit {
                self.fast.inst_fast_hits += u64::from(self.fast_path);
            } else {
                self.fast.inst_slow += u64::from(self.fast_path);
                // Fused L2 lookup: the install moves ahead of the L3
                // request, which only touches L3/port state, and the
                // victim's inclusion/writeback handling stays behind
                // it — so the request order every component sees is
                // unchanged.
                let (l2, ev) = self.l2.access_fill(op.pc, false, self.id);
                if !l2.is_hit() {
                    self.warm_l3_request(op.pc, false, now, port);
                    self.finish_l2_victim(ev, port, now);
                }
                self.l1i.fill(op.pc, false, self.id);
            }
        }
        match op.class {
            OpClass::Branch => {
                let _ = self.bp.access(op.pc, op.taken);
            }
            OpClass::Load | OpClass::Store => {
                // Mem ops carry addresses by construction; a missing one is
                // dropped rather than aborting the run.
                if let Some(raw) = op.addr {
                    let addr = self.tag_data_address(raw);
                    self.functional_data_access(addr, op.class == OpClass::Store, now, port);
                }
            }
            _ => {}
        }
        self.committed += 1;
    }

    /// Issues a warm-path L3 request through `port`, counting the
    /// outcome now if the port resolved it (direct) or leaving the count
    /// to the batch drain (deferred).
    fn warm_l3_request(&mut self, addr: Address, write: bool, at: Cycle, port: &mut impl WarmPort) {
        if let Some(outcome) = port.access(self.id, addr, write, at) {
            self.note_l3_outcome(outcome.source);
        }
    }

    /// Applies the source classification of one drained batched request
    /// to this core's L3 counters — the counterpart of the counting done
    /// inline on the direct path.
    #[inline]
    pub fn note_l3_outcome(&mut self, source: L3Source) {
        self.l3_accesses += 1;
        match source {
            L3Source::LocalHit => self.l3_local_hits += 1,
            L3Source::RemoteHit => self.l3_remote_hits += 1,
            L3Source::Memory => self.l3_misses += 1,
        }
    }

    /// Advances the core by one cycle against the given last-level cache.
    pub fn step(&mut self, now: Cycle, l3: &mut dyn LastLevel) {
        self.mshr.expire(now);
        self.commit(now);
        self.issue(now, l3);
        self.dispatch();
        self.fetch(now, l3);
    }

    #[inline]
    fn dep_ready_cycle(&self, producer: u64) -> u64 {
        if producer == 0 {
            0
        } else {
            self.ready_ring[(producer as usize) % RING]
        }
    }

    /// Proves (or refuses to prove) that [`step`](Self::step) at `now` is
    /// a total no-op, returning the earliest cycle at which the core might
    /// act again. `None` means the core may do work *this* cycle and must
    /// be stepped; `Some(wake)` guarantees that every step in
    /// `now..wake` changes no architectural state, advances no trace
    /// stream, and emits no telemetry event, so the chip-level run loop
    /// may jump the clock straight to `wake`.
    ///
    /// The proof mirrors the five pipeline stages of `step`, each of which
    /// must be individually quiescent:
    ///
    /// - **MSHR expiry** acts only when a fill's `ready_at` has arrived;
    ///   the earliest outstanding completion is a wake source.
    /// - **Commit** acts only when the ROB head is issued and complete;
    ///   its `ready_at` is a wake source.
    /// - **Issue** acts as soon as *any* unissued entry in the scheduler
    ///   window has both dependencies ready — even one that would then be
    ///   refused a functional unit or MSHR slot (the refusal emits an
    ///   `MshrStall` telemetry event, so such cycles must be stepped to
    ///   keep traced runs bit-identical). Dependency-ready times from the
    ///   ready ring are wake sources; in-flight producers (`u64::MAX`)
    ///   are not, because the producer's own issue happens on a stepped
    ///   cycle which re-opens the horizon.
    /// - **Dispatch** is time-independent: it acts whenever the fetch
    ///   queue is nonempty, the ROB has room and (for memory ops) the LSQ
    ///   has room. Those resources only free on commit, already covered.
    /// - **Fetch** acts whenever it is not gated by an unresolved branch,
    ///   a full fetch queue, or `fetch_resume_at`; the latter is a wake
    ///   source.
    pub fn idle_until(&self, now: Cycle) -> Option<Cycle> {
        let mut wake = u64::MAX;

        // Fetch: an unblocked front end pulls new ops every cycle.
        if self.waiting_branch.is_none()
            && self.fetch_queue.len() < self.cfg.pipeline.fetch_queue.max(self.cfg.pipeline.width)
        {
            if self.fetch_resume_at <= now {
                return None;
            }
            wake = wake.min(self.fetch_resume_at.raw());
        }

        // Dispatch: blocked only by ROB/LSQ pressure, which is
        // time-independent and only released by commit.
        if let Some(&(op, _)) = self.fetch_queue.front() {
            let rob_full = self.rob.len() >= self.cfg.pipeline.ruu_size;
            let lsq_blocked = op.class.is_mem() && self.lsq_occupancy >= self.cfg.pipeline.lsq_size;
            if !rob_full && !lsq_blocked {
                return None;
            }
        }

        // Commit: in-order retirement waits on the head only.
        if let Some(e) = self.rob.front() {
            if e.issued {
                if e.ready_at <= now {
                    return None;
                }
                wake = wake.min(e.ready_at.raw());
            }
        }

        // MSHR: a completed fill frees a register this cycle.
        if let Some(t) = self.mshr.next_completion() {
            if t <= now {
                return None;
            }
            wake = wake.min(t.raw());
        }

        // Issue: scan the same bounded scheduler window `issue` uses.
        if let Some(start) = self.oldest_unissued(self.fast_path) {
            let end = (start + SCHED_WINDOW).min(self.rob.len());
            for idx in start..end {
                let e = &self.rob[idx];
                if e.issued {
                    continue;
                }
                let ready = self
                    .dep_ready_cycle(e.dep1)
                    .max(self.dep_ready_cycle(e.dep2));
                if ready <= now.raw() {
                    return None;
                }
                if ready != u64::MAX {
                    wake = wake.min(ready);
                }
            }
        }

        Some(Cycle::new(wake))
    }

    fn commit(&mut self, now: Cycle) {
        let mut popped = 0;
        for _ in 0..self.cfg.pipeline.width {
            let ready = matches!(self.rob.front(), Some(e) if e.issued && e.ready_at <= now);
            if !ready {
                break;
            }
            let Some(e) = self.rob.pop_front() else { break };
            if e.class.is_mem() {
                self.lsq_occupancy -= 1;
            }
            self.committed += 1;
            popped += 1;
        }
        // The issued prefix shrinks by exactly the popped entries.
        self.issue_hint = self.issue_hint.saturating_sub(popped);
    }

    /// The index of the oldest unissued ROB entry. With the fast path on,
    /// the scan starts at `issue_hint` — every entry below it is issued
    /// (the invariant commit/issue/drain maintain) — so both scans find
    /// the same index.
    #[inline]
    fn oldest_unissued(&self, fast: bool) -> Option<usize> {
        if fast {
            self.rob
                .iter()
                .skip(self.issue_hint)
                .position(|e| !e.issued)
                .map(|p| p + self.issue_hint)
        } else {
            self.rob.iter().position(|e| !e.issued)
        }
    }

    fn issue(&mut self, now: Cycle, l3: &mut dyn LastLevel) {
        let width = self.cfg.pipeline.width;
        let mut issued = 0;
        let mut int_alu = self.cfg.pipeline.int_alus;
        let mut fp_alu = self.cfg.pipeline.fp_alus;
        let mut int_mul = self.cfg.pipeline.int_mul;
        let mut fp_mul = self.cfg.pipeline.fp_mul;
        let mut mem_ports = MEM_PORTS;
        let mshr_blocked = self.mshr.is_full();
        // One stall event per blocked cycle, not per deferred op.
        let mut stall_emitted = false;

        // Find the oldest unissued entry, then look a bounded scheduler
        // window past it.
        let start = match self.oldest_unissued(self.fast_path) {
            Some(i) => i,
            None => {
                self.issue_hint = self.rob.len();
                return;
            }
        };
        self.issue_hint = start;
        let end = (start + SCHED_WINDOW).min(self.rob.len());

        for idx in start..end {
            if issued >= width {
                break;
            }
            let entry = self.rob[idx];
            if entry.issued {
                continue;
            }
            if !self.dep_ready(entry.dep1, now) || !self.dep_ready(entry.dep2, now) {
                continue;
            }
            // Functional unit / port availability.
            let fu_ok = match entry.class {
                OpClass::IntAlu | OpClass::Branch => {
                    if int_alu > 0 {
                        int_alu -= 1;
                        true
                    } else {
                        false
                    }
                }
                OpClass::FpAlu => {
                    if fp_alu > 0 {
                        fp_alu -= 1;
                        true
                    } else {
                        false
                    }
                }
                OpClass::IntMul => {
                    if int_mul > 0 {
                        int_mul -= 1;
                        true
                    } else {
                        false
                    }
                }
                OpClass::FpMul => {
                    if fp_mul > 0 {
                        fp_mul -= 1;
                        true
                    } else {
                        false
                    }
                }
                OpClass::Load | OpClass::Store => {
                    if mshr_blocked {
                        if S::ENABLED && !stall_emitted {
                            stall_emitted = true;
                            self.sink.emit(now, Event::MshrStall { core: self.id });
                        }
                        false
                    } else if mem_ports > 0 {
                        mem_ports -= 1;
                        true
                    } else {
                        false
                    }
                }
            };
            if !fu_ok {
                continue;
            }

            let ready_at = match (entry.class, entry.addr) {
                (OpClass::Load, Some(addr)) => self.data_access(addr, false, now, l3),
                (OpClass::Store, Some(addr)) => {
                    // Stores retire through the store buffer: the cache
                    // and memory system see the access (state, bandwidth),
                    // but commit does not wait for it.
                    let _ = self.data_access(addr, true, now, l3);
                    now + 1
                }
                // Mem ops carry addresses by construction; an address-less
                // one degrades to its base latency instead of aborting.
                (class, _) => now + class.base_latency(),
            };

            let e = &mut self.rob[idx];
            e.issued = true;
            e.ready_at = ready_at;
            self.ready_ring[(e.seq as usize) % RING] = ready_at.raw();
            if e.mispredicted {
                // Fetch restarts after the branch resolves plus the
                // misprediction penalty.
                self.fetch_resume_at = ready_at + self.cfg.pipeline.mispredict_penalty;
                self.waiting_branch = None;
            }
            issued += 1;
        }
    }

    /// Performs a data-side access, returning when the data is ready.
    fn data_access(
        &mut self,
        addr: Address,
        write: bool,
        now: Cycle,
        l3: &mut dyn LastLevel,
    ) -> Cycle {
        // Fast path: with no outstanding fill anywhere (so no MSHR merge
        // and no `MshrMerge` telemetry is possible), a fused DTLB+L1D hit
        // is exactly the reference walk below — DTLB hit means
        // `start == now`, L1D hit returns after the L1D latency, and the
        // fused probe has already committed both hit-side updates.
        if self.fast_path
            && self.mshr.is_empty()
            && fastpath::fused_hit(&mut self.dtlb, &mut self.l1d, addr, write)
        {
            self.fast.data_fast_hits += 1;
            return now + self.cfg.l1d.latency();
        }
        self.fast.data_slow += 1;

        let mut start = now;
        if !self.dtlb.access(addr) {
            start += self.dtlb.miss_penalty();
        }
        let blk = addr.block(self.cfg.l1d.offset_bits());

        // Outstanding fill for this block? Merge: timing comes from the
        // MSHR even though the block may already be installed state-wise.
        if let Some(merge) = self.mshr.lookup(blk) {
            if S::ENABLED {
                self.sink.emit(now, Event::MshrMerge { core: self.id });
            }
            let _ = self.l1d.access(addr, write, self.id);
            return merge.max(start + self.cfg.l1d.latency());
        }

        if self.l1d.access(addr, write, self.id).is_hit() {
            return start + self.cfg.l1d.latency();
        }
        let after_l1 = start + self.cfg.l1d.latency();
        if self.l2.access(addr, write, self.id).is_hit() {
            self.fill_l1d(addr, write);
            return after_l1 + self.cfg.l2.latency();
        }
        // L2 miss: go to the last-level organization.
        let l3_start = after_l1 + self.cfg.l2.latency();
        let outcome = self.l3_request(addr, write, l3_start, l3);
        self.mshr.request(blk, outcome.data_ready);
        if S::ENABLED {
            self.sink.emit(now, Event::MshrAlloc { core: self.id });
        }
        self.fill_l2(addr, write, l3, now);
        self.fill_l1d(addr, write);
        outcome.data_ready
    }

    fn l3_request(
        &mut self,
        addr: Address,
        write: bool,
        at: Cycle,
        l3: &mut dyn LastLevel,
    ) -> L3Outcome {
        let outcome = l3.access(self.id, addr, write, at);
        self.note_l3_outcome(outcome.source);
        outcome
    }

    fn fill_l1d(&mut self, addr: Address, dirty: bool) {
        if let Some(ev) = self.l1d.fill(addr, dirty, self.id) {
            if ev.dirty {
                // Dirty L1 victim merges into L2.
                let victim = ev.addr.first_byte(self.cfg.l1d.offset_bits());
                if self.l2.fill(victim, true, self.id).is_some() {
                    // The merge itself displaced an L2 block; handled the
                    // same as any L2 eviction below (rare).
                }
            }
        }
    }

    fn fill_l2(&mut self, addr: Address, dirty: bool, l3: &mut dyn LastLevel, now: Cycle) {
        self.fill_l2_port(addr, dirty, &mut DirectPort { l3 }, now);
    }

    fn fill_l2_port(&mut self, addr: Address, dirty: bool, port: &mut impl WarmPort, now: Cycle) {
        let ev = self.l2.fill(addr, dirty, self.id);
        self.finish_l2_victim(ev, port, now);
    }

    /// Inclusion maintenance for an L2 eviction: drop the L1 copies and
    /// write the victim back if any copy was dirty.
    fn finish_l2_victim(
        &mut self,
        ev: Option<cachesim::cache::EvictedBlock>,
        port: &mut impl WarmPort,
        now: Cycle,
    ) {
        if let Some(ev) = ev {
            let victim = ev.addr.first_byte(self.cfg.l2.offset_bits());
            // Maintain inclusion: drop the L1 copies.
            let l1_victim = self.l1d.invalidate(victim);
            let _ = self.l1i.invalidate(victim);
            let victim_dirty = ev.dirty || l1_victim.map(|b| b.dirty).unwrap_or(false);
            if victim_dirty {
                port.writeback(self.id, victim, now);
            }
        }
    }

    fn dispatch(&mut self) {
        let width = self.cfg.pipeline.width;
        for _ in 0..width {
            if self.rob.len() >= self.cfg.pipeline.ruu_size {
                break;
            }
            let Some(&(op, mispredicted)) = self.fetch_queue.front() else {
                break;
            };
            if op.class.is_mem() && self.lsq_occupancy >= self.cfg.pipeline.lsq_size {
                break;
            }
            self.fetch_queue.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            if op.class.is_mem() {
                self.lsq_occupancy += 1;
            }
            self.ready_ring[(seq as usize) % RING] = u64::MAX;
            let dep1 = seq.saturating_sub(op.dep1 as u64);
            let dep2 = if op.dep2 == 0 || op.dep2 as u64 >= seq {
                0
            } else {
                seq - op.dep2 as u64
            };
            if mispredicted {
                self.waiting_branch = Some(seq);
            }
            self.rob.push_back(RobEntry {
                seq,
                class: op.class,
                addr: op.addr,
                dep1,
                dep2,
                issued: false,
                ready_at: Cycle::ZERO,
                mispredicted,
            });
        }
    }

    fn fetch(&mut self, now: Cycle, l3: &mut dyn LastLevel) {
        if self.waiting_branch.is_some() || now < self.fetch_resume_at {
            return;
        }
        // The detailed pipeline reads dependency distances: leave warm
        // decode. The switch collapses any decoded-ahead slab, so every
        // op fetched here is full-decoded. No-op when already in full
        // mode (the common case — one flag compare per fetch call).
        self.gen.set_warm_decode(false);
        let width = self.cfg.pipeline.width;
        for _ in 0..width {
            if self.fetch_queue.len() >= self.cfg.pipeline.fetch_queue.max(width) {
                break;
            }
            let mut op = self.gen.next_op();
            // Tag both instruction and data addresses with this core's
            // address space so shared structures never alias across
            // programs.
            op.pc = op.pc.with_asid(self.id.asid());
            if let Some(a) = op.addr {
                op.addr = Some(self.tag_data_address(a));
            }

            // Instruction-side: one cache access per new fetch block.
            let block = op.pc.block(self.cfg.l1i.offset_bits()).raw();
            if block != self.last_fetch_block {
                self.last_fetch_block = block;
                if self.fast_path
                    && fastpath::fused_hit(&mut self.itlb, &mut self.l1i, op.pc, false)
                {
                    // ITLB hit + L1I hit: the reference walk below would
                    // leave `start == now`, hit the L1I and fall through
                    // without stalling — the fused probe has already
                    // committed those exact hit-side updates.
                    self.fast.inst_fast_hits += 1;
                } else {
                    self.fast.inst_slow += 1;
                    let mut start = now;
                    if !self.itlb.access(op.pc) {
                        start += self.itlb.miss_penalty();
                    }
                    if !self.l1i.access(op.pc, false, self.id).is_hit() {
                        let after_l1 = start + self.cfg.l1i.latency();
                        let ready = if self.l2.access(op.pc, false, self.id).is_hit() {
                            after_l1 + self.cfg.l2.latency()
                        } else {
                            let outcome =
                                self.l3_request(op.pc, false, after_l1 + self.cfg.l2.latency(), l3);
                            self.fill_l2(op.pc, false, l3, now);
                            outcome.data_ready
                        };
                        self.l1i.fill(op.pc, false, self.id);
                        self.fetch_resume_at = ready;
                        // The missing instruction itself enters the queue;
                        // the stall gates everything younger.
                        self.fetch_queue.push_back((op, false));
                        return;
                    } else if start > now {
                        // ITLB miss alone also stalls the front end.
                        self.fetch_resume_at = start;
                        self.fetch_queue.push_back((op, false));
                        return;
                    }
                }
            }

            if op.class == OpClass::Branch {
                let correct = self.bp.access(op.pc, op.taken);
                self.fetch_queue.push_back((op, !correct));
                if !correct {
                    // Nothing younger is fetched until this branch
                    // resolves.
                    return;
                }
            } else {
                self.fetch_queue.push_back((op, false));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l3iface::FixedLatencyL3;
    use simcore::rng::SimRng;
    use tracegen::profile::{AppProfileBuilder, MemoryMix};

    fn run_core(profile: tracegen::AppProfile, cycles: u64) -> (CoreStats, Core) {
        let cfg = MachineConfig::baseline();
        let gen = TraceGenerator::new(&profile, SimRng::seed_from(11));
        let mut core = Core::new(CoreId::from_index(0), &cfg, gen);
        let mut l3 = FixedLatencyL3::new(19);
        let warmup = cycles / 2;
        for c in 0..warmup {
            core.step(Cycle::new(c), &mut l3);
        }
        core.reset_stats(Cycle::new(warmup));
        for c in warmup..warmup + cycles {
            core.step(Cycle::new(c), &mut l3);
        }
        (core.stats(Cycle::new(warmup + cycles)), core)
    }

    fn compute_bound_profile() -> tracegen::AppProfile {
        AppProfileBuilder::new("compute")
            .loads(0.05)
            .stores(0.02)
            .branches(0.05)
            .predictability(0.99)
            .dep_mean(8.0)
            .dep2(0.1)
            .mix(MemoryMix {
                l1_resident: 1.0,
                l2_resident: 0.0,
                l3_hot: 0.0,
                streaming: 0.0,
            })
            .l1_kb(16)
            .code_kb(16)
            .build()
            .unwrap()
    }

    #[test]
    fn compute_bound_code_reaches_high_ipc() {
        let (stats, _) = run_core(compute_bound_profile(), 200_000);
        let ipc = stats.ipc();
        assert!(ipc > 1.5, "compute-bound IPC {ipc} should be high");
        assert!(ipc <= 4.0, "IPC cannot exceed machine width");
    }

    #[test]
    fn serial_dependencies_bound_ipc_near_one() {
        let p = AppProfileBuilder::new("serial")
            .loads(0.0)
            .stores(0.0)
            .branches(0.0)
            .dep_mean(1.0000001) // every op depends on its predecessor
            .dep2(0.0)
            .build()
            .unwrap();
        let (stats, _) = run_core(p, 100_000);
        let ipc = stats.ipc();
        assert!(
            (0.5..1.2).contains(&ipc),
            "serial chain IPC {ipc} should be near 1"
        );
    }

    #[test]
    fn memory_streaming_lowers_ipc() {
        let p = AppProfileBuilder::new("stream")
            .loads(0.3)
            .stores(0.1)
            .mix(MemoryMix {
                l1_resident: 0.0,
                l2_resident: 0.0,
                l3_hot: 0.0,
                streaming: 1.0,
            })
            .stream_kb(64 * 1024)
            .build()
            .unwrap();
        let (stream_stats, _) = run_core(p, 200_000);
        let (compute_stats, _) = run_core(compute_bound_profile(), 200_000);
        assert!(stream_stats.ipc() < compute_stats.ipc() * 0.7);
        assert!(stream_stats.l3_accesses > 0, "streaming reaches the L3");
    }

    #[test]
    fn l1_resident_working_set_stays_out_of_l3() {
        let (stats, _) = run_core(compute_bound_profile(), 200_000);
        assert!(
            stats.l3_accesses_per_kilocycle() < 1.0,
            "L1-resident app leaked {} accesses/kcycle to L3",
            stats.l3_accesses_per_kilocycle()
        );
        assert!(stats.l1d.miss_ratio() < 0.05);
    }

    #[test]
    fn l3_hot_app_pressures_l3() {
        let p = AppProfileBuilder::new("hot")
            .loads(0.28)
            .stores(0.08)
            .mix(MemoryMix {
                l1_resident: 0.2,
                l2_resident: 0.1,
                l3_hot: 0.6,
                streaming: 0.1,
            })
            .hot_kb(2048)
            .build()
            .unwrap();
        let (stats, _) = run_core(p, 300_000);
        assert!(
            stats.l3_accesses_per_kilocycle() > 9.0,
            "hot app only reached {} accesses/kcycle",
            stats.l3_accesses_per_kilocycle()
        );
    }

    #[test]
    fn branch_mispredicts_are_counted_and_costly() {
        let hard = AppProfileBuilder::new("hard")
            .branches(0.3)
            .loads(0.05)
            .stores(0.02)
            .predictability(0.55)
            .build()
            .unwrap();
        let easy = AppProfileBuilder::new("easy")
            .branches(0.3)
            .loads(0.05)
            .stores(0.02)
            .predictability(0.99)
            .build()
            .unwrap();
        let (hard_stats, _) = run_core(hard, 150_000);
        let (easy_stats, _) = run_core(easy, 150_000);
        assert!(hard_stats.mispredicts * 2 > hard_stats.branches / 2 / 2);
        assert!(hard_stats.ipc() < easy_stats.ipc());
    }

    #[test]
    fn stats_reset_starts_new_window() {
        let cfg = MachineConfig::baseline();
        let gen = TraceGenerator::new(&compute_bound_profile(), SimRng::seed_from(3));
        let mut core = Core::new(CoreId::from_index(0), &cfg, gen);
        let mut l3 = FixedLatencyL3::new(19);
        for c in 0..50_000 {
            core.step(Cycle::new(c), &mut l3);
        }
        core.reset_stats(Cycle::new(50_000));
        assert_eq!(core.committed(), 0);
        for c in 50_000..100_000 {
            core.step(Cycle::new(c), &mut l3);
        }
        let s = core.stats(Cycle::new(100_000));
        assert_eq!(s.cycles, 50_000);
        assert!(s.committed > 0);
    }

    #[test]
    fn committed_instructions_grow_monotonically() {
        let cfg = MachineConfig::baseline();
        let gen = TraceGenerator::new(&compute_bound_profile(), SimRng::seed_from(5));
        let mut core = Core::new(CoreId::from_index(0), &cfg, gen);
        let mut l3 = FixedLatencyL3::new(19);
        let mut last = 0;
        for c in 0..20_000 {
            core.step(Cycle::new(c), &mut l3);
            assert!(core.committed() >= last);
            last = core.committed();
        }
        assert!(last > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = run_core(compute_bound_profile(), 50_000);
        let (b, _) = run_core(compute_bound_profile(), 50_000);
        assert_eq!(a, b);
    }

    #[test]
    fn fast_path_is_invisible_to_results() {
        // Warm + detailed + drain with the fast path on and off: window
        // statistics and the learned-state snapshot must be identical;
        // only the side-channel counters may differ.
        let p = AppProfileBuilder::new("mixy")
            .loads(0.25)
            .stores(0.08)
            .branches(0.12)
            .predictability(0.9)
            .mix(MemoryMix {
                l1_resident: 0.5,
                l2_resident: 0.2,
                l3_hot: 0.2,
                streaming: 0.1,
            })
            .hot_kb(1024)
            .stream_kb(4 * 1024)
            .build()
            .unwrap();
        let run = |fast: bool| {
            let cfg = MachineConfig::baseline();
            let gen = TraceGenerator::new(&p, SimRng::seed_from(23));
            let mut core = Core::new(CoreId::from_index(0), &cfg, gen);
            core.set_fast_path(fast);
            let mut l3 = FixedLatencyL3::new(19);
            for c in 0..20_000 {
                core.warm_op(Cycle::new(c), &mut l3);
            }
            core.reset_stats(Cycle::ZERO);
            for c in 0..60_000 {
                core.step(Cycle::new(c), &mut l3);
            }
            core.drain_pipeline(Cycle::new(60_000), &mut l3);
            let stats = core.stats(Cycle::new(60_000));
            let mut w = simcore::snapshot::SnapshotWriter::new();
            core.save_state(&mut w).expect("drained core snapshots");
            (stats, w.finish(), core.fast_path_stats())
        };
        let (fast_stats, fast_snap, fast_counters) = run(true);
        let (slow_stats, slow_snap, slow_counters) = run(false);
        assert_eq!(fast_stats, slow_stats);
        assert_eq!(fast_snap, slow_snap);
        assert!(
            fast_counters.data_fast_hits > 0 && fast_counters.inst_fast_hits > 0,
            "fast path never fired: {fast_counters:?}"
        );
        assert_eq!(
            slow_counters.data_fast_hits + slow_counters.inst_fast_hits,
            0,
            "disabled fast path still fired: {slow_counters:?}"
        );
    }

    #[test]
    fn idle_until_agrees_with_hintless_scan() {
        // The issue-scan hint must never change what idle_until proves:
        // compare the hinted core's verdicts against a --no-fast-path
        // twin at every cycle of a mixed run.
        let cfg = MachineConfig::baseline();
        let p = memoryless_check_profile();
        let mk = |fast: bool| {
            let gen = TraceGenerator::new(&p, SimRng::seed_from(41));
            let mut core = Core::new(CoreId::from_index(0), &cfg, gen);
            core.set_fast_path(fast);
            core
        };
        let mut a = mk(true);
        let mut b = mk(false);
        let mut l3a = FixedLatencyL3::new(19);
        let mut l3b = FixedLatencyL3::new(19);
        for c in 0..30_000 {
            let now = Cycle::new(c);
            assert_eq!(a.idle_until(now), b.idle_until(now), "cycle {c}");
            a.step(now, &mut l3a);
            b.step(now, &mut l3b);
        }
        assert_eq!(a.committed(), b.committed());
    }

    fn memoryless_check_profile() -> tracegen::AppProfile {
        AppProfileBuilder::new("hinty")
            .loads(0.2)
            .stores(0.05)
            .branches(0.15)
            .predictability(0.8)
            .mix(MemoryMix {
                l1_resident: 0.6,
                l2_resident: 0.2,
                l3_hot: 0.2,
                streaming: 0.0,
            })
            .hot_kb(512)
            .build()
            .unwrap()
    }
}
