//! The fused TLB+cache hit probe behind the core-side fast path.
//!
//! The overwhelmingly common event in a measured window is a TLB hit
//! followed by an L1 hit. The reference path resolves it as two
//! independent structure walks with their updates interleaved; the fused
//! probe resolves both *reads* first — TLB residency via
//! [`Tlb::lookup`], the L1 way via [`Cache::peek_hit_way`], each served
//! by its own last-hit memo — and commits the two hit-side updates only
//! when **both** structures hit. On any miss nothing has been mutated,
//! so the caller re-runs the full reference sequence from the top and
//! every miss-side effect (stamp ordering, installs, evictions,
//! statistics) happens exactly as it always did.
//!
//! Exactness argument: pages are unique within a TLB and block addresses
//! are unique within a cache set, so the memo-served lookups answer
//! exactly what the reference walks answer; on the both-hit path the
//! committed updates are, statement for statement, the reference hit
//! paths of [`Tlb::access`] and [`Cache::access`]; on any other path no
//! state changed. The fast path is therefore bit-identical end-to-end —
//! the property the `--no-fast-path` differentials pin.
//!
//! Two entry points share that machinery. [`fused_hit`] is
//! all-or-nothing — right for the detailed pipeline, where the miss
//! timing interleaves with other state and the caller wants the whole
//! reference sequence on any miss. [`functional_walk`] is
//! commit-on-every-outcome — right for the functional warm path, where
//! a miss owes no timing: it probes each structure once and applies the
//! exact hit *or* miss side in place, so the majority-miss warm stream
//! never pays a duplicated lookup.
//!
//! This module is covered by the L7/D4 hot-path lint passes.

use cachesim::cache::Cache;
use simcore::types::Address;

use crate::tlb::Tlb;

/// Counters of fast-path effectiveness for one core. These feed the
/// perf attribution side channel only — they are **not** part of
/// [`CoreStats`](crate::core::CoreStats) and never reach rendered
/// results, traces or snapshots, which must stay byte-identical across
/// fast-path modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Data-side accesses retired through the fused probe.
    pub data_fast_hits: u64,
    /// Data-side accesses that fell back to the reference path.
    pub data_slow: u64,
    /// Instruction-side fetch blocks resolved through the fused probe.
    pub inst_fast_hits: u64,
    /// Instruction-side fetch blocks that fell back.
    pub inst_slow: u64,
}

impl FastPathStats {
    /// Accumulates another core's counters (chip-level aggregation).
    pub fn absorb(&mut self, other: FastPathStats) {
        self.data_fast_hits += other.data_fast_hits;
        self.data_slow += other.data_slow;
        self.inst_fast_hits += other.inst_fast_hits;
        self.inst_slow += other.inst_slow;
    }

    /// Fraction of accesses (both sides) served by the fused probe.
    pub fn fast_fraction(&self) -> f64 {
        let fast = self.data_fast_hits + self.inst_fast_hits;
        let total = fast + self.data_slow + self.inst_slow;
        if total == 0 {
            0.0
        } else {
            fast as f64 / total as f64
        }
    }
}

/// The fused TLB+L1 probe: resolves translation and tag match in one
/// pass and commits both hit-side updates iff both structures hit.
/// Returns `true` on the fused hit; `false` leaves `tlb` and `l1`
/// untouched (all-or-nothing), and the caller must run the reference
/// sequence.
#[inline]
pub fn fused_hit(tlb: &mut Tlb, l1: &mut Cache, addr: Address, write: bool) -> bool {
    let Some(slot) = tlb.lookup(addr) else {
        return false;
    };
    let Some(way) = l1.peek_hit_way(addr) else {
        return false;
    };
    tlb.commit_hit(slot);
    let _ = l1.commit_hit_at(addr, way, write);
    true
}

/// The fused TLB+L1 *walk* for the functional (warm / pipeline-drain)
/// path: probes each structure exactly once and commits the matching
/// side — hit or miss — immediately, instead of the all-or-nothing
/// [`fused_hit`] contract that makes the caller rerun both reference
/// walks on any miss. Returns `true` iff the L1 hit; on `false` the
/// caller owes only the L2-and-beyond reference sequence (plus the L1
/// fill), never a TLB or L1 re-probe.
///
/// Exactness: [`Tlb::access`] is literally `lookup` then
/// `commit_hit`/`miss_install`, and [`Cache::access`] is literally
/// `peek_hit_way` then `commit_hit_at`/`note_miss` — this walk performs
/// the same statements in the same order, so the two structures end in
/// the byte-identical states the sequential reference walk produces,
/// for all four hit/miss combinations.
#[inline]
pub fn functional_walk(tlb: &mut Tlb, l1: &mut Cache, addr: Address, write: bool) -> bool {
    match tlb.lookup(addr) {
        Some(slot) => tlb.commit_hit(slot),
        None => tlb.miss_install(addr),
    }
    match l1.peek_hit_way(addr) {
        Some(way) => {
            let _ = l1.commit_hit_at(addr, way, write);
            true
        }
        None => {
            l1.note_miss();
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::config::{CacheGeometry, TlbConfig};
    use simcore::rng::SimRng;
    use simcore::types::CoreId;

    fn parts() -> (Tlb, Cache) {
        (
            Tlb::new(TlbConfig {
                entries: 16,
                miss_penalty: 30,
            }),
            Cache::new(CacheGeometry::new(4096, 4, 64, 1).unwrap()),
        )
    }

    #[test]
    fn fused_probe_equals_sequential_reference() {
        // Random streams through the fused probe (with reference
        // fallback) and through the plain sequential TLB-then-L1 walk
        // must leave both structures in identical states.
        let mut rng = SimRng::seed_from(3);
        let (mut ft, mut fc) = parts();
        let (mut rt, mut rc) = parts();
        let core = CoreId::from_index(0);
        for i in 0..30_000 {
            let addr = Address::new(rng.below(1 << 17) & !7);
            let write = rng.chance(0.3);
            // Fused side.
            let fused = fused_hit(&mut ft, &mut fc, addr, write);
            if !fused {
                ft.access(addr);
                if !fc.access(addr, write, core).is_hit() {
                    fc.fill(addr, write, core);
                }
            }
            // Reference side.
            let tlb_hit = rt.access(addr);
            let l1_hit = rc.access(addr, write, core).is_hit();
            if !l1_hit {
                rc.fill(addr, write, core);
            }
            assert_eq!(fused, tlb_hit && l1_hit, "op {i}");
        }
        assert_eq!((ft.hits(), ft.misses()), (rt.hits(), rt.misses()));
        assert_eq!(fc.stats(), rc.stats());
        let enc_tlb = |t: &Tlb| {
            let mut w = simcore::snapshot::SnapshotWriter::new();
            t.save_state(&mut w);
            w.finish()
        };
        let enc_cache = |c: &Cache| {
            let mut w = simcore::snapshot::SnapshotWriter::new();
            c.save_state(&mut w);
            w.finish()
        };
        assert_eq!(enc_tlb(&ft), enc_tlb(&rt));
        assert_eq!(enc_cache(&fc), enc_cache(&rc));
    }

    #[test]
    fn functional_walk_equals_sequential_reference() {
        // Same twin-state check as the fused probe, but for the
        // commit-on-every-outcome walk: a random stream (page space
        // sized to exercise all four TLB×L1 hit/miss combinations) must
        // leave both structures byte-identical to the sequential
        // `tlb.access` → `l1.access` reference, with no fallback probes.
        let mut rng = SimRng::seed_from(11);
        let (mut ft, mut fc) = parts();
        let (mut rt, mut rc) = parts();
        let core = CoreId::from_index(0);
        let mut outcomes = [0u64; 4];
        for i in 0..30_000 {
            let addr = Address::new(rng.below(1 << 18) & !7);
            let write = rng.chance(0.3);
            // Walk side: L1 miss owes only the fill.
            let walk_hit = functional_walk(&mut ft, &mut fc, addr, write);
            if !walk_hit {
                fc.fill(addr, write, core);
            }
            // Reference side.
            let tlb_hit = rt.access(addr);
            let l1_hit = rc.access(addr, write, core).is_hit();
            if !l1_hit {
                rc.fill(addr, write, core);
            }
            assert_eq!(walk_hit, l1_hit, "op {i}");
            outcomes[(tlb_hit as usize) << 1 | l1_hit as usize] += 1;
        }
        assert!(
            outcomes.iter().all(|&n| n > 0),
            "stream must cover all four TLB×L1 outcomes: {outcomes:?}"
        );
        assert_eq!((ft.hits(), ft.misses()), (rt.hits(), rt.misses()));
        assert_eq!(fc.stats(), rc.stats());
        let enc_tlb = |t: &Tlb| {
            let mut w = simcore::snapshot::SnapshotWriter::new();
            t.save_state(&mut w);
            w.finish()
        };
        let enc_cache = |c: &Cache| {
            let mut w = simcore::snapshot::SnapshotWriter::new();
            c.save_state(&mut w);
            w.finish()
        };
        assert_eq!(enc_tlb(&ft), enc_tlb(&rt));
        assert_eq!(enc_cache(&fc), enc_cache(&rc));
    }

    #[test]
    fn failed_probe_mutates_nothing() {
        let (mut tlb, mut cache) = parts();
        let core = CoreId::from_index(0);
        let a = Address::new(0x4000);
        // TLB resident, cache not: probe must fail and leave the TLB's
        // stamp/statistics untouched (all-or-nothing).
        tlb.access(a);
        let (h0, m0) = (tlb.hits(), tlb.misses());
        assert!(!fused_hit(&mut tlb, &mut cache, a, false));
        assert_eq!((tlb.hits(), tlb.misses()), (h0, m0));
        assert_eq!(cache.stats().accesses(), 0);
        // Cache resident, TLB evicted: same from the other side.
        cache.fill(a, false, core);
        for p in 1..=16u64 {
            tlb.access(Address::new((100 + p) << 12)); // evict page of `a`
        }
        let cache_stats = cache.stats();
        assert!(!fused_hit(&mut tlb, &mut cache, a, false));
        assert_eq!(cache.stats(), cache_stats);
    }

    #[test]
    fn stats_aggregate_and_report() {
        let mut a = FastPathStats {
            data_fast_hits: 6,
            data_slow: 2,
            inst_fast_hits: 3,
            inst_slow: 1,
        };
        a.absorb(FastPathStats {
            data_fast_hits: 1,
            data_slow: 1,
            inst_fast_hits: 0,
            inst_slow: 2,
        });
        assert_eq!(a.data_fast_hits, 7);
        assert!((a.fast_fraction() - 10.0 / 16.0).abs() < 1e-12);
        assert_eq!(FastPathStats::default().fast_fraction(), 0.0);
    }
}
