//! Fully-associative translation lookaside buffers (Table 1: 128 entries,
//! 30-cycle miss penalty, separate instruction and data TLBs).
//!
//! Storage is a pair of flat vectors (`pages`/`stamps`) plus a small
//! direct-mapped *residency memo* that remembers the slot of the last
//! translation per low-page-bits bucket. The memo is a pure search-order
//! optimization in the spirit of `cachesim::swar::TagFilter`: a memo hit
//! skips the linear scan, a memo mismatch falls back to it, and because
//! pages are unique within the TLB both paths find the same slot. The
//! memo read is gated by [`Tlb::set_memo`] (the `--no-fast-path` escape
//! hatch); the memo is *maintained* unconditionally so toggling is free.

use simcore::config::TlbConfig;
use simcore::types::Address;

/// Direct-mapped memo size; indexed by `page & (MEMO_SLOTS - 1)`.
const MEMO_SLOTS: usize = 256;

/// A fully-associative, LRU-replaced TLB over 4-KiB pages.
///
/// # Example
///
/// ```
/// use cpusim::tlb::Tlb;
/// use simcore::config::TlbConfig;
/// use simcore::types::Address;
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert!(!tlb.access(Address::new(0x1000)));  // cold miss
/// assert!(tlb.access(Address::new(0x1fff)));   // same page: hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// Resident pages, in insertion order. Pages are unique, so any scan
    /// order finds the same slot; eviction replaces in place.
    pages: Vec<u64>,
    /// Last-use stamp per slot, parallel to `pages`. Stamps are unique
    /// (one global counter), so the LRU victim is deterministic
    /// regardless of storage order.
    stamps: Vec<u64>,
    /// Direct-mapped slot memo: `slot + 1`, 0 = empty. Validated against
    /// `pages` before being trusted, so stale entries are harmless.
    memo: Vec<u32>,
    /// Whether lookups may consult the memo (the fast path). Off, every
    /// lookup is the reference linear scan.
    memo_on: bool,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0, "TLB needs at least one entry");
        Tlb {
            pages: Vec::with_capacity(cfg.entries),
            stamps: Vec::with_capacity(cfg.entries),
            memo: vec![0; MEMO_SLOTS],
            memo_on: true,
            stamp: 0,
            hits: 0,
            misses: 0,
            cfg,
        }
    }

    /// Enables or disables the residency-memo fast path. Disabled, every
    /// lookup runs the reference linear scan; the memo keeps being
    /// maintained either way, so re-enabling needs no rebuild. Results
    /// are identical in both modes.
    pub fn set_memo(&mut self, enabled: bool) {
        self.memo_on = enabled;
    }

    #[inline]
    fn memo_slot(page: u64) -> usize {
        (page as usize) & (MEMO_SLOTS - 1)
    }

    /// Finds the slot holding `page`, memo first when enabled. Pages are
    /// unique within the TLB, so the memo'd slot and the scan agree.
    #[inline]
    fn find(&self, page: u64) -> Option<usize> {
        if self.memo_on {
            let m = self.memo[Self::memo_slot(page)];
            if m != 0 {
                let slot = (m - 1) as usize;
                if slot < self.pages.len() && self.pages[slot] == page {
                    return Some(slot);
                }
            }
        }
        self.pages.iter().position(|&p| p == page)
    }

    /// Non-mutating residency probe: the slot translating `addr`, if any.
    /// No stamp, statistic or memo update — pair with
    /// [`commit_hit`](Self::commit_hit) once the fused TLB+L1 probe has
    /// decided the whole access is a hit.
    #[inline]
    pub fn lookup(&self, addr: Address) -> Option<usize> {
        self.find(addr.page())
    }

    /// Applies the hit-side state updates for a slot returned by
    /// [`lookup`](Self::lookup): exactly what [`access`](Self::access)
    /// does on a hit.
    #[inline]
    pub fn commit_hit(&mut self, slot: usize) {
        self.stamp += 1;
        self.stamps[slot] = self.stamp;
        self.hits += 1;
        self.memo[Self::memo_slot(self.pages[slot])] = slot as u32 + 1;
    }

    /// Translates `addr`; returns `true` on a hit. A miss installs the
    /// page, evicting the LRU entry when full.
    pub fn access(&mut self, addr: Address) -> bool {
        if let Some(slot) = self.find(addr.page()) {
            self.commit_hit(slot);
            return true;
        }
        self.miss_install(addr);
        false
    }

    /// Applies the miss-side state updates for an address that
    /// [`lookup`](Self::lookup) found absent: exactly what
    /// [`access`](Self::access) does on a miss — count it, install the
    /// page, and evict the LRU entry when full.
    pub fn miss_install(&mut self, addr: Address) {
        let page = addr.page();
        self.stamp += 1;
        self.misses += 1;
        let slot = if self.pages.len() >= self.cfg.entries {
            // A full TLB always has a victim; `entries > 0` is asserted
            // in the constructor. Stamps are unique, so the minimum is
            // the same entry the ordered-map implementation evicted.
            let mut victim = 0;
            let mut best = u64::MAX;
            for (i, &s) in self.stamps.iter().enumerate() {
                if s < best {
                    best = s;
                    victim = i;
                }
            }
            victim
        } else {
            self.pages.push(0);
            self.stamps.push(0);
            self.pages.len() - 1
        };
        self.pages[slot] = page;
        self.stamps[slot] = self.stamp;
        self.memo[Self::memo_slot(page)] = slot as u32 + 1;
    }

    /// The miss penalty in cycles.
    #[inline]
    pub fn miss_penalty(&self) -> u64 {
        self.cfg.miss_penalty
    }

    /// Hits since the last reset.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since the last reset.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Clears statistics (translations are kept).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Writes the translations, LRU stamps and statistics to a snapshot.
    /// Entries are emitted in page order — the canonical encoding the
    /// earlier ordered-map storage produced — so snapshots are
    /// byte-identical across storage layouts. The memo is derived state
    /// and is not encoded.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        let mut entries: Vec<(u64, u64)> = self
            .pages
            .iter()
            .copied()
            .zip(self.stamps.iter().copied())
            .collect();
        entries.sort_unstable_by_key(|&(page, _)| page);
        w.put_usize(entries.len());
        for (page, last) in entries {
            w.put_u64(page);
            w.put_u64(last);
        }
        w.put_u64(self.stamp);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
    }

    /// Restores state written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Corrupt`] when the entry
    /// count exceeds this TLB's capacity; decode errors otherwise.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        let n = r.get_usize()?;
        if n > self.cfg.entries {
            return Err(simcore::snapshot::SnapshotError::Mismatch(
                "TLB entry count exceeds capacity",
            ));
        }
        self.pages.clear();
        self.stamps.clear();
        self.memo.fill(0);
        for _ in 0..n {
            let page = r.get_u64()?;
            let last = r.get_u64()?;
            self.pages.push(page);
            self.stamps.push(last);
            self.memo[Self::memo_slot(page)] = self.pages.len() as u32;
        }
        self.stamp = r.get_u64()?;
        self.hits = r.get_u64()?;
        self.misses = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(entries: usize) -> Tlb {
        Tlb::new(TlbConfig {
            entries,
            miss_penalty: 30,
        })
    }

    #[test]
    fn hit_within_page_miss_across() {
        let mut t = small(4);
        assert!(!t.access(Address::new(0x0000)));
        assert!(t.access(Address::new(0x0fff)));
        assert!(!t.access(Address::new(0x1000)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut t = small(2);
        t.access(Address::new(0x0000)); // page 0
        t.access(Address::new(0x1000)); // page 1
        t.access(Address::new(0x0000)); // touch page 0 -> page 1 is LRU
        t.access(Address::new(0x2000)); // evicts page 1
        assert!(t.access(Address::new(0x0000)), "page 0 survived");
        assert!(!t.access(Address::new(0x1000)), "page 1 was evicted");
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut t = small(128);
        for p in 0..128u64 {
            t.access(Address::new(p << 12));
        }
        t.reset_stats();
        for round in 0..4 {
            for p in 0..128u64 {
                assert!(t.access(Address::new(p << 12)), "round {round} page {p}");
            }
        }
        assert_eq!(t.misses(), 0);
    }

    #[test]
    fn penalty_comes_from_config() {
        let t = small(4);
        assert_eq!(t.miss_penalty(), 30);
    }

    #[test]
    fn memo_and_reference_scan_agree() {
        // The memo is a pure search-order optimization: an aliasing page
        // stream (memo buckets collide every MEMO_SLOTS pages) must
        // produce identical verdicts, statistics and snapshots with the
        // memo read on and off.
        let run = |memo: bool| {
            let mut t = small(16);
            t.set_memo(memo);
            let mut verdicts = Vec::new();
            for i in 0..4_000u64 {
                // Mix of reuse, bucket aliasing (page ± 256) and fresh
                // pages, so hits, memo mismatches and evictions all fire.
                let page = match i % 5 {
                    0 => i % 8,
                    1 => (i % 8) + 256,
                    2 => (i % 8) + 512,
                    3 => i % 24,
                    _ => i * 7 % 97,
                };
                verdicts.push(t.access(Address::new(page << 12)));
            }
            let mut w = simcore::snapshot::SnapshotWriter::new();
            t.save_state(&mut w);
            (verdicts, t.hits(), t.misses(), w.finish())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn lookup_and_commit_hit_match_access() {
        let mut a = small(8);
        let mut b = small(8);
        for i in 0..2_000u64 {
            let addr = Address::new((i * 13 % 29) << 12);
            let via_access = a.access(addr);
            let via_parts = match b.lookup(addr) {
                Some(slot) => {
                    b.commit_hit(slot);
                    true
                }
                None => b.access(addr),
            };
            assert_eq!(via_access, via_parts, "op {i}");
        }
        assert_eq!((a.hits(), a.misses()), (b.hits(), b.misses()));
        let enc = |t: &Tlb| {
            let mut w = simcore::snapshot::SnapshotWriter::new();
            t.save_state(&mut w);
            w.finish()
        };
        assert_eq!(enc(&a), enc(&b));
    }
}
