//! Fully-associative translation lookaside buffers (Table 1: 128 entries,
//! 30-cycle miss penalty, separate instruction and data TLBs).

use std::collections::BTreeMap;

use simcore::config::TlbConfig;
use simcore::types::Address;

/// A fully-associative, LRU-replaced TLB over 4-KiB pages.
///
/// # Example
///
/// ```
/// use cpusim::tlb::Tlb;
/// use simcore::config::TlbConfig;
/// use simcore::types::Address;
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert!(!tlb.access(Address::new(0x1000)));  // cold miss
/// assert!(tlb.access(Address::new(0x1fff)));   // same page: hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// page -> last-use stamp. Ordered map keeps iteration (and therefore
    /// LRU tie-breaking) deterministic across runs.
    entries: BTreeMap<u64, u64>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0, "TLB needs at least one entry");
        Tlb {
            entries: BTreeMap::new(),
            stamp: 0,
            hits: 0,
            misses: 0,
            cfg,
        }
    }

    /// Translates `addr`; returns `true` on a hit. A miss installs the
    /// page, evicting the LRU entry when full.
    pub fn access(&mut self, addr: Address) -> bool {
        let page = addr.page();
        self.stamp += 1;
        if let Some(last) = self.entries.get_mut(&page) {
            *last = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() >= self.cfg.entries {
            // A full TLB always has a victim; `entries > 0` is asserted in
            // the constructor.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, last)| **last)
                .map(|(page, _)| *page);
            if let Some(v) = victim {
                self.entries.remove(&v);
            }
        }
        self.entries.insert(page, self.stamp);
        false
    }

    /// The miss penalty in cycles.
    #[inline]
    pub fn miss_penalty(&self) -> u64 {
        self.cfg.miss_penalty
    }

    /// Hits since the last reset.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since the last reset.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Clears statistics (translations are kept).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Writes the translations, LRU stamps and statistics to a snapshot.
    /// `BTreeMap` iteration is ordered, so the encoding is canonical.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_usize(self.entries.len());
        for (&page, &last) in &self.entries {
            w.put_u64(page);
            w.put_u64(last);
        }
        w.put_u64(self.stamp);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
    }

    /// Restores state written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Corrupt`] when the entry
    /// count exceeds this TLB's capacity; decode errors otherwise.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        let n = r.get_usize()?;
        if n > self.cfg.entries {
            return Err(simcore::snapshot::SnapshotError::Mismatch(
                "TLB entry count exceeds capacity",
            ));
        }
        self.entries.clear();
        for _ in 0..n {
            let page = r.get_u64()?;
            let last = r.get_u64()?;
            self.entries.insert(page, last);
        }
        self.stamp = r.get_u64()?;
        self.hits = r.get_u64()?;
        self.misses = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(entries: usize) -> Tlb {
        Tlb::new(TlbConfig {
            entries,
            miss_penalty: 30,
        })
    }

    #[test]
    fn hit_within_page_miss_across() {
        let mut t = small(4);
        assert!(!t.access(Address::new(0x0000)));
        assert!(t.access(Address::new(0x0fff)));
        assert!(!t.access(Address::new(0x1000)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut t = small(2);
        t.access(Address::new(0x0000)); // page 0
        t.access(Address::new(0x1000)); // page 1
        t.access(Address::new(0x0000)); // touch page 0 -> page 1 is LRU
        t.access(Address::new(0x2000)); // evicts page 1
        assert!(t.access(Address::new(0x0000)), "page 0 survived");
        assert!(!t.access(Address::new(0x1000)), "page 1 was evicted");
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut t = small(128);
        for p in 0..128u64 {
            t.access(Address::new(p << 12));
        }
        t.reset_stats();
        for round in 0..4 {
            for p in 0..128u64 {
                assert!(t.access(Address::new(p << 12)), "round {round} page {p}");
            }
        }
        assert_eq!(t.misses(), 0);
    }

    #[test]
    fn penalty_comes_from_config() {
        let t = small(4);
        assert_eq!(t.miss_penalty(), 30);
    }
}
