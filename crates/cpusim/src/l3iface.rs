//! The interface between a core's private hierarchy and the last-level
//! cache organization under study.
//!
//! The paper evaluates several last-level organizations (private, shared,
//! adaptive NUCA, cooperative). Cores are agnostic: they hand every L2
//! miss to a [`LastLevel`] implementation, which decides where the block
//! lives, what latency the requester pays and when main memory gets
//! involved. The organizations themselves live in the `nuca-core` crate.

use simcore::types::{Address, CoreId, Cycle};

/// Where a last-level request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L3Source {
    /// Hit in the requester's private partition / local slice
    /// (14 cycles in Table 1).
    LocalHit,
    /// Hit in the shared partition or a neighboring slice (19 cycles).
    RemoteHit,
    /// Miss — served by main memory.
    Memory,
}

/// Timing and provenance of one last-level access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L3Outcome {
    /// Absolute cycle at which the requested data is available.
    pub data_ready: Cycle,
    /// Where the data came from.
    pub source: L3Source,
}

/// A last-level cache organization serving L2 misses from all cores.
///
/// Implementations update their own replacement/partitioning state and
/// call into the shared memory channel on misses. `addr` arrives already
/// tagged with the requester's address-space identifier, so distinct
/// programs never alias.
pub trait LastLevel {
    /// Serves an L2 miss by `core` for `addr` at time `now`.
    fn access(&mut self, core: CoreId, addr: Address, write: bool, now: Cycle) -> L3Outcome;

    /// Accepts a dirty block evicted from `core`'s L2.
    fn writeback(&mut self, core: CoreId, addr: Address, now: Cycle);
}

/// Worst-case deferred L3 ops from one warmed instruction: an I-side
/// access plus its L2-eviction writeback, and a D-side access plus its
/// L2-eviction writeback.
pub const OPS_PER_WARM_OP: usize = 4;

/// Capacity of one [`L3Batch`] — eight cores' worth of one warm
/// instruction each. The chip warm loop drains whenever fewer than
/// [`OPS_PER_WARM_OP`] slots remain, so any core count stays in bounds.
pub const BATCH_CAPACITY: usize = 32;

/// One deferred last-level request collected by the batched warm path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L3Op {
    /// An L2 miss (read or write-allocate) by `core`.
    Access {
        /// Requesting core.
        core: CoreId,
        /// Requested address (already ASID-tagged).
        addr: Address,
        /// Whether the access is a write.
        write: bool,
    },
    /// A dirty L2 victim handed down by `core`.
    Writeback {
        /// Evicting core.
        core: CoreId,
        /// Victim block address.
        addr: Address,
    },
}

const EMPTY_OP: L3Op = L3Op::Writeback {
    core: CoreId::from_index(0),
    addr: Address::new(0),
};

/// A small fixed-size batch of per-core L3 requests due in one warm
/// cycle.
///
/// The functional warm path discards L3 timing (only the outcome
/// *source* feeds per-core counters), so instead of calling into the
/// organization once per L2 miss interleaved with private-hierarchy
/// work, each core appends its requests here and the chip drains the
/// whole batch through the organization in one pass — tag-array and
/// quota-bookkeeping lines stay hot across consecutive requests. Entries
/// are drained in exactly the order they were pushed (core-major, each
/// access followed by its dependent writeback), which is the same order
/// the one-at-a-time path used, so the organization's state evolution is
/// bit-identical; see `nuca_core::cmp` for the proof obligations.
///
/// Storage is a fixed-size array: pushing never allocates (lint L7).
#[derive(Debug)]
pub struct L3Batch {
    ops: [L3Op; BATCH_CAPACITY],
    len: usize,
}

impl Default for L3Batch {
    fn default() -> Self {
        L3Batch::new()
    }
}

impl L3Batch {
    /// Creates an empty batch.
    #[must_use]
    pub const fn new() -> Self {
        L3Batch {
            ops: [EMPTY_OP; BATCH_CAPACITY],
            len: 0,
        }
    }

    /// Number of queued ops.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining capacity; drain before it drops below
    /// [`OPS_PER_WARM_OP`].
    #[inline]
    #[must_use]
    pub fn remaining(&self) -> usize {
        BATCH_CAPACITY - self.len
    }

    /// The queued ops, in push order.
    #[inline]
    pub fn ops(&self) -> &[L3Op] {
        &self.ops[..self.len]
    }

    /// Clears the batch after a drain.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    #[inline]
    fn push(&mut self, op: L3Op) {
        debug_assert!(self.len < BATCH_CAPACITY, "warm batch overflow");
        self.ops[self.len] = op;
        self.len += 1;
    }
}

/// Where a warming core sends its L3-bound requests: either straight
/// into the organization (outcome returned now) or into an [`L3Batch`]
/// (outcome delivered when the chip drains the batch).
pub trait WarmPort {
    /// Issues an L2 miss; `Some` when resolved immediately, `None` when
    /// queued for a later drain.
    fn access(&mut self, core: CoreId, addr: Address, write: bool, now: Cycle)
        -> Option<L3Outcome>;

    /// Hands down a dirty L2 victim.
    fn writeback(&mut self, core: CoreId, addr: Address, now: Cycle);
}

/// [`WarmPort`] adapter that forwards to a [`LastLevel`] immediately —
/// the one-at-a-time reference path.
pub struct DirectPort<'a> {
    /// The organization served directly.
    pub l3: &'a mut dyn LastLevel,
}

impl WarmPort for DirectPort<'_> {
    #[inline]
    fn access(
        &mut self,
        core: CoreId,
        addr: Address,
        write: bool,
        now: Cycle,
    ) -> Option<L3Outcome> {
        Some(self.l3.access(core, addr, write, now))
    }

    #[inline]
    fn writeback(&mut self, core: CoreId, addr: Address, now: Cycle) {
        self.l3.writeback(core, addr, now);
    }
}

impl WarmPort for L3Batch {
    #[inline]
    fn access(
        &mut self,
        core: CoreId,
        addr: Address,
        write: bool,
        _now: Cycle,
    ) -> Option<L3Outcome> {
        self.push(L3Op::Access { core, addr, write });
        None
    }

    #[inline]
    fn writeback(&mut self, core: CoreId, addr: Address, _now: Cycle) {
        self.push(L3Op::Writeback { core, addr });
    }
}

/// A fixed-latency, always-hit pseudo-L3 for unit tests and pipeline
/// micro-benchmarks.
///
/// # Example
///
/// ```
/// use cpusim::l3iface::{FixedLatencyL3, LastLevel, L3Source};
/// use simcore::types::{Address, CoreId, Cycle};
///
/// let mut l3 = FixedLatencyL3::new(19);
/// let out = l3.access(CoreId::from_index(0), Address::new(0x40), false, Cycle::new(10));
/// assert_eq!(out.data_ready, Cycle::new(29));
/// assert_eq!(out.source, L3Source::RemoteHit);
/// ```
#[derive(Debug, Clone)]
pub struct FixedLatencyL3 {
    latency: u64,
    accesses: u64,
    writebacks: u64,
}

impl FixedLatencyL3 {
    /// Creates an always-hit L3 with the given latency.
    pub fn new(latency: u64) -> Self {
        FixedLatencyL3 {
            latency,
            accesses: 0,
            writebacks: 0,
        }
    }

    /// Number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of write-backs absorbed.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }
}

impl LastLevel for FixedLatencyL3 {
    fn access(&mut self, _core: CoreId, _addr: Address, _write: bool, now: Cycle) -> L3Outcome {
        self.accesses += 1;
        L3Outcome {
            data_ready: now + self.latency,
            source: L3Source::RemoteHit,
        }
    }

    fn writeback(&mut self, _core: CoreId, _addr: Address, _now: Cycle) {
        self.writebacks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_preserves_push_order_and_clears() {
        let mut b = L3Batch::new();
        assert!(b.is_empty());
        let c0 = CoreId::from_index(0);
        let c1 = CoreId::from_index(1);
        assert!(b
            .access(c0, Address::new(0x40), false, Cycle::new(5))
            .is_none());
        b.writeback(c0, Address::new(0x80), Cycle::new(5));
        assert!(b
            .access(c1, Address::new(0xc0), true, Cycle::new(5))
            .is_none());
        assert_eq!(
            b.ops(),
            &[
                L3Op::Access {
                    core: c0,
                    addr: Address::new(0x40),
                    write: false
                },
                L3Op::Writeback {
                    core: c0,
                    addr: Address::new(0x80)
                },
                L3Op::Access {
                    core: c1,
                    addr: Address::new(0xc0),
                    write: true
                },
            ]
        );
        assert_eq!(b.remaining(), BATCH_CAPACITY - 3);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.remaining(), BATCH_CAPACITY);
    }

    #[test]
    fn direct_port_forwards_and_returns_outcome() {
        let mut l3 = FixedLatencyL3::new(7);
        let mut port = DirectPort { l3: &mut l3 };
        let out = port
            .access(
                CoreId::from_index(0),
                Address::new(0x40),
                false,
                Cycle::new(3),
            )
            .expect("direct port resolves immediately");
        assert_eq!(out.data_ready.raw(), 10);
        port.writeback(CoreId::from_index(0), Address::new(0x80), Cycle::new(3));
        assert_eq!(l3.accesses(), 1);
        assert_eq!(l3.writebacks(), 1);
    }

    #[test]
    fn fixed_latency_counts_and_times() {
        let mut l3 = FixedLatencyL3::new(5);
        let c = CoreId::from_index(1);
        let out = l3.access(c, Address::new(0), true, Cycle::new(100));
        assert_eq!(out.data_ready.raw(), 105);
        l3.writeback(c, Address::new(0x40), Cycle::new(101));
        assert_eq!(l3.accesses(), 1);
        assert_eq!(l3.writebacks(), 1);
    }
}
