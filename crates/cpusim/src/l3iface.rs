//! The interface between a core's private hierarchy and the last-level
//! cache organization under study.
//!
//! The paper evaluates several last-level organizations (private, shared,
//! adaptive NUCA, cooperative). Cores are agnostic: they hand every L2
//! miss to a [`LastLevel`] implementation, which decides where the block
//! lives, what latency the requester pays and when main memory gets
//! involved. The organizations themselves live in the `nuca-core` crate.

use simcore::types::{Address, CoreId, Cycle};

/// Where a last-level request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L3Source {
    /// Hit in the requester's private partition / local slice
    /// (14 cycles in Table 1).
    LocalHit,
    /// Hit in the shared partition or a neighboring slice (19 cycles).
    RemoteHit,
    /// Miss — served by main memory.
    Memory,
}

/// Timing and provenance of one last-level access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L3Outcome {
    /// Absolute cycle at which the requested data is available.
    pub data_ready: Cycle,
    /// Where the data came from.
    pub source: L3Source,
}

/// A last-level cache organization serving L2 misses from all cores.
///
/// Implementations update their own replacement/partitioning state and
/// call into the shared memory channel on misses. `addr` arrives already
/// tagged with the requester's address-space identifier, so distinct
/// programs never alias.
pub trait LastLevel {
    /// Serves an L2 miss by `core` for `addr` at time `now`.
    fn access(&mut self, core: CoreId, addr: Address, write: bool, now: Cycle) -> L3Outcome;

    /// Accepts a dirty block evicted from `core`'s L2.
    fn writeback(&mut self, core: CoreId, addr: Address, now: Cycle);
}

/// A fixed-latency, always-hit pseudo-L3 for unit tests and pipeline
/// micro-benchmarks.
///
/// # Example
///
/// ```
/// use cpusim::l3iface::{FixedLatencyL3, LastLevel, L3Source};
/// use simcore::types::{Address, CoreId, Cycle};
///
/// let mut l3 = FixedLatencyL3::new(19);
/// let out = l3.access(CoreId::from_index(0), Address::new(0x40), false, Cycle::new(10));
/// assert_eq!(out.data_ready, Cycle::new(29));
/// assert_eq!(out.source, L3Source::RemoteHit);
/// ```
#[derive(Debug, Clone)]
pub struct FixedLatencyL3 {
    latency: u64,
    accesses: u64,
    writebacks: u64,
}

impl FixedLatencyL3 {
    /// Creates an always-hit L3 with the given latency.
    pub fn new(latency: u64) -> Self {
        FixedLatencyL3 {
            latency,
            accesses: 0,
            writebacks: 0,
        }
    }

    /// Number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of write-backs absorbed.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }
}

impl LastLevel for FixedLatencyL3 {
    fn access(&mut self, _core: CoreId, _addr: Address, _write: bool, now: Cycle) -> L3Outcome {
        self.accesses += 1;
        L3Outcome {
            data_ready: now + self.latency,
            source: L3Source::RemoteHit,
        }
    }

    fn writeback(&mut self, _core: CoreId, _addr: Address, _now: Cycle) {
        self.writebacks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_counts_and_times() {
        let mut l3 = FixedLatencyL3::new(5);
        let c = CoreId::from_index(1);
        let out = l3.access(c, Address::new(0), true, Cycle::new(100));
        assert_eq!(out.data_ready.raw(), 105);
        l3.writeback(c, Address::new(0x40), Cycle::new(101));
        assert_eq!(l3.accesses(), 1);
        assert_eq!(l3.writebacks(), 1);
    }
}
