//! The combined branch predictor and branch target buffer of Table 1.
//!
//! SimpleScalar's "comb" predictor: a 4K-entry bimodal table, a 2-level
//! (gshare-style) predictor with a 10-bit global history indexing a
//! 1K-entry pattern table, and a 4K-entry chooser that learns which
//! component to trust per branch. A 512-entry, 4-way BTB supplies targets;
//! a taken branch that misses in the BTB costs a misfetch even when the
//! direction was predicted correctly.

use simcore::config::BranchConfig;
use simcore::types::Address;

/// A 2-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sat2(u8);

impl Sat2 {
    const WEAK_TAKEN: Sat2 = Sat2(2);

    #[inline]
    fn predict(self) -> bool {
        self.0 >= 2
    }

    #[inline]
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Outcome of one prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Whether the BTB knew the target (only relevant for taken branches).
    pub btb_hit: bool,
}

/// The combined (bimodal + 2-level + chooser) predictor with BTB.
///
/// # Example
///
/// ```
/// use cpusim::branch::BranchPredictor;
/// use simcore::config::BranchConfig;
/// use simcore::types::Address;
///
/// let mut bp = BranchPredictor::new(BranchConfig::default());
/// let pc = Address::new(0x400100);
/// // A heavily-biased branch is learned quickly.
/// for _ in 0..8 { bp.access(pc, true); }
/// assert!(bp.access(pc, true));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: BranchConfig,
    bimodal: Vec<Sat2>,
    level2: Vec<Sat2>,
    chooser: Vec<Sat2>,
    history: u32,
    history_mask: u32,
    /// BTB: `btb_entries / btb_assoc` sets of `btb_assoc` tags with LRU
    /// counters.
    btb: Vec<(u64, u64)>, // (tag, last_use)
    btb_sets: usize,
    btb_use: u64,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with the given table sizes.
    ///
    /// # Panics
    ///
    /// Panics if any table size is zero or not a power of two where an
    /// index mask is required.
    pub fn new(cfg: BranchConfig) -> Self {
        assert!(
            cfg.bimodal_entries.is_power_of_two(),
            "bimodal table must be a power of two"
        );
        assert!(
            cfg.level2_entries.is_power_of_two(),
            "level-2 table must be a power of two"
        );
        assert!(
            cfg.chooser_entries.is_power_of_two(),
            "chooser table must be a power of two"
        );
        assert!(
            cfg.btb_assoc > 0 && cfg.btb_entries.is_multiple_of(cfg.btb_assoc),
            "BTB must divide into whole sets"
        );
        let btb_sets = cfg.btb_entries / cfg.btb_assoc;
        BranchPredictor {
            bimodal: vec![Sat2::WEAK_TAKEN; cfg.bimodal_entries],
            level2: vec![Sat2::WEAK_TAKEN; cfg.level2_entries],
            chooser: vec![Sat2::WEAK_TAKEN; cfg.chooser_entries],
            history: 0,
            history_mask: (1u32 << cfg.history_bits) - 1,
            btb: vec![(u64::MAX, 0); cfg.btb_entries],
            btb_sets,
            btb_use: 0,
            predictions: 0,
            mispredictions: 0,
            cfg,
        }
    }

    #[inline]
    fn bimodal_idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.bimodal_entries - 1)
    }

    #[inline]
    fn level2_idx(&self, pc: u64) -> usize {
        (((pc >> 2) as u32 ^ self.history) as usize) & (self.cfg.level2_entries - 1)
    }

    #[inline]
    fn chooser_idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.chooser_entries - 1)
    }

    /// Predicts the direction for `pc` without updating any state.
    pub fn predict(&self, pc: Address) -> bool {
        let pc = pc.raw();
        let bi = self.bimodal[self.bimodal_idx(pc)].predict();
        let l2 = self.level2[self.level2_idx(pc)].predict();
        if self.chooser[self.chooser_idx(pc)].predict() {
            l2
        } else {
            bi
        }
    }

    fn btb_lookup_update(&mut self, pc: u64, taken: bool) -> bool {
        let set = (pc >> 2) as usize % self.btb_sets;
        let base = set * self.cfg.btb_assoc;
        self.btb_use += 1;
        let ways = &mut self.btb[base..base + self.cfg.btb_assoc];
        if let Some(w) = ways.iter_mut().find(|(tag, _)| *tag == pc) {
            w.1 = self.btb_use;
            return true;
        }
        if taken {
            // Allocate on taken branches, LRU replacement (associativity is
            // validated nonzero at construction, so a victim always exists).
            if let Some(victim) = ways.iter_mut().min_by_key(|(_, last)| *last) {
                *victim = (pc, self.btb_use);
            }
        }
        false
    }

    /// Performs a full predict-and-update cycle for a resolved branch:
    /// consults the combined predictor and the BTB, then trains every
    /// component with the architected outcome. Returns `true` when the
    /// front end fetched correctly (right direction, and a known target
    /// for taken branches).
    pub fn access(&mut self, pc: Address, taken: bool) -> bool {
        let raw = pc.raw();
        let bi_idx = self.bimodal_idx(raw);
        let l2_idx = self.level2_idx(raw);
        let ch_idx = self.chooser_idx(raw);
        let bi = self.bimodal[bi_idx].predict();
        let l2 = self.level2[l2_idx].predict();
        let use_l2 = self.chooser[ch_idx].predict();
        let dir = if use_l2 { l2 } else { bi };

        let btb_hit = self.btb_lookup_update(raw, taken);
        let correct = dir == taken && (!taken || btb_hit);

        // Train direction tables.
        self.bimodal[bi_idx].update(taken);
        self.level2[l2_idx].update(taken);
        // Chooser trains toward the component that was right (only when
        // they disagree).
        if bi != l2 {
            self.chooser[ch_idx].update(l2 == taken);
        }
        self.history = ((self.history << 1) | taken as u32) & self.history_mask;

        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Number of predictions made since the last reset.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Number of mispredictions (wrong direction or missing target).
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction ratio in `[0, 1]`.
    pub fn mispredict_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Clears statistics (learned state is kept).
    pub fn reset_stats(&mut self) {
        self.predictions = 0;
        self.mispredictions = 0;
    }

    /// Writes the learned tables, history, BTB and statistics to a
    /// snapshot.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        for table in [&self.bimodal, &self.level2, &self.chooser] {
            w.put_usize(table.len());
            for s in table {
                w.put_u8(s.0);
            }
        }
        w.put_u32(self.history);
        w.put_usize(self.btb.len());
        for &(tag, last) in &self.btb {
            w.put_u64(tag);
            w.put_u64(last);
        }
        w.put_u64(self.btb_use);
        w.put_u64(self.predictions);
        w.put_u64(self.mispredictions);
    }

    /// Restores state written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Mismatch`] when any table
    /// size differs from this predictor's configuration.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        use simcore::snapshot::SnapshotError;
        for table in [&mut self.bimodal, &mut self.level2, &mut self.chooser] {
            let n = r.get_usize()?;
            if n != table.len() {
                return Err(SnapshotError::Mismatch("branch predictor table size"));
            }
            for s in table.iter_mut() {
                let v = r.get_u8()?;
                if v > 3 {
                    return Err(SnapshotError::Corrupt("saturating counter > 3"));
                }
                *s = Sat2(v);
            }
        }
        self.history = r.get_u32()?;
        let n = r.get_usize()?;
        if n != self.btb.len() {
            return Err(SnapshotError::Mismatch("BTB size"));
        }
        for e in &mut self.btb {
            e.0 = r.get_u64()?;
            e.1 = r.get_u64()?;
        }
        self.btb_use = r.get_u64()?;
        self.predictions = r.get_u64()?;
        self.mispredictions = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::SimRng;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(BranchConfig::default())
    }

    #[test]
    fn learns_strongly_biased_branch() {
        let mut p = bp();
        let pc = Address::new(0x400010);
        for _ in 0..10 {
            p.access(pc, true);
        }
        p.reset_stats();
        for _ in 0..100 {
            p.access(pc, true);
        }
        assert_eq!(p.mispredictions(), 0);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // A strict alternation is invisible to bimodal but perfectly
        // predictable from 10 bits of history.
        let mut p = bp();
        let pc = Address::new(0x400020);
        let mut t = false;
        for _ in 0..2_000 {
            p.access(pc, t);
            t = !t;
        }
        p.reset_stats();
        for _ in 0..500 {
            p.access(pc, t);
            t = !t;
        }
        assert!(
            p.mispredict_ratio() < 0.05,
            "alternation should be learned, got {}",
            p.mispredict_ratio()
        );
    }

    #[test]
    fn random_branches_are_hard() {
        let mut p = bp();
        let mut rng = SimRng::seed_from(5);
        let pc = Address::new(0x400030);
        for _ in 0..2_000 {
            p.access(pc, rng.chance(0.5));
        }
        assert!(p.mispredict_ratio() > 0.3, "random branch must stay hard");
    }

    #[test]
    fn biased_pool_reaches_expected_accuracy() {
        // 90 %-biased branches should be predicted near 90 %.
        let mut p = bp();
        let mut rng = SimRng::seed_from(6);
        for _ in 0..50_000 {
            let b = rng.below(64);
            let pc = Address::new(0x400000 + b * 4);
            let bias = if b.is_multiple_of(2) { 0.9 } else { 0.1 };
            p.access(pc, rng.chance(bias));
        }
        let acc = 1.0 - p.mispredict_ratio();
        assert!((0.82..0.95).contains(&acc), "accuracy {acc}");
    }

    #[test]
    fn btb_miss_on_first_taken_branch() {
        let mut p = bp();
        let pc = Address::new(0x400040);
        // First encounter: even if direction guess is "taken" (weak
        // initial state), the target is unknown -> not correct.
        assert!(!p.access(pc, true));
        // Second encounter: learned.
        assert!(p.access(pc, true));
    }

    #[test]
    fn btb_capacity_conflicts_evict_lru() {
        let mut p = BranchPredictor::new(BranchConfig {
            btb_entries: 4,
            btb_assoc: 2,
            ..BranchConfig::default()
        });
        // Three taken branches mapping to the same 2-way set force an
        // eviction: sets = 2, so stride 2*4 bytes in (pc>>2) terms.
        let pcs: Vec<Address> = (0..3).map(|i| Address::new(0x1000 + i * 16)).collect();
        for &pc in &pcs {
            p.access(pc, true);
        }
        for &pc in &pcs {
            p.access(pc, true);
        }
        assert!(p.mispredictions() >= 4, "evictions force repeat misfetches");
    }

    #[test]
    fn not_taken_branches_do_not_need_btb() {
        let mut p = bp();
        let pc = Address::new(0x400050);
        for _ in 0..10 {
            p.access(pc, false);
        }
        p.reset_stats();
        assert!(p.access(pc, false));
        assert_eq!(p.mispredictions(), 0);
    }

    #[test]
    fn stats_reset_keeps_learned_state() {
        let mut p = bp();
        let pc = Address::new(0x400060);
        for _ in 0..20 {
            p.access(pc, true);
        }
        p.reset_stats();
        assert_eq!(p.predictions(), 0);
        assert!(p.predict(pc), "learned direction survives reset");
    }
}
