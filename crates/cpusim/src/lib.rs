//! The out-of-order core timing model for the NUCA CMP simulator.
//!
//! This crate provides the processor-side substrate the paper's
//! SimpleScalar-based evaluation relies on:
//!
//! - [`core`] — a cycle-driven out-of-order core (Table 1: 128-entry RUU,
//!   64-entry LSQ, 4-wide, functional-unit contention, non-blocking
//!   caches with MSHR merging, 7-cycle misprediction penalty) with its
//!   private L1I/L1D/L2 hierarchy.
//! - [`branch`] — the combined bimodal + 2-level predictor with a 4-way
//!   BTB.
//! - [`tlb`] — fully-associative 128-entry I/D TLBs.
//! - [`l3iface`] — the [`l3iface::LastLevel`] trait every
//!   last-level organization implements; cores hand L2 misses to it.
//!
//! # Example
//!
//! ```
//! use cpusim::core::Core;
//! use cpusim::l3iface::FixedLatencyL3;
//! use simcore::config::MachineConfig;
//! use simcore::rng::SimRng;
//! use simcore::types::{CoreId, Cycle};
//! use tracegen::{spec::SpecApp, TraceGenerator};
//!
//! let cfg = MachineConfig::baseline();
//! let gen = TraceGenerator::new(SpecApp::Gzip.profile(), SimRng::seed_from(1));
//! let mut core = Core::new(CoreId::from_index(0), &cfg, gen);
//! let mut l3 = FixedLatencyL3::new(19);
//! for c in 0..1_000 {
//!     core.step(Cycle::new(c), &mut l3);
//! }
//! assert!(core.committed() > 0);
//! ```

pub mod branch;
pub mod core;
pub mod fastpath;
pub mod l3iface;
pub mod tlb;

pub use crate::core::{Core, CoreStats};
pub use branch::BranchPredictor;
pub use fastpath::FastPathStats;
pub use l3iface::{FixedLatencyL3, L3Outcome, L3Source, LastLevel};
pub use tlb::Tlb;
