//! The functional retire path of the time-sampling engine.
//!
//! A SMARTS-style time-sampled run alternates detailed windows (the
//! cycle-accurate [`Core::step`](super::Core::step) loop) with
//! functional-warming gaps in which instructions retire credit-paced at
//! each core's IPC from the preceding detailed window, through the same
//! decoded-trace plumbing `Cmp::warm` uses:
//! every cache access, LRU touch, TLB/predictor update and last-level
//! request still happens, but no pipeline timing is modeled.
//!
//! This module owns the boundary between the two regimes:
//!
//! - [`Core::functional_data_access`] is the latency-free D-side walk of
//!   the private hierarchy (shared by the warm path and the drain);
//! - [`Core::drain_pipeline`] functionally retires whatever a detailed
//!   window left in flight and resets the pipeline to the quiescent
//!   state, so a gap can start without losing or re-randomizing any
//!   instruction of the trace stream.
//!
//! Everything here is hot-path code for the functional gap engine and is
//! covered by the L7/D4 lint passes: no allocation, no per-op branching
//! beyond what the access stream requires.

use simcore::types::{Address, Cycle};
use telemetry::Sink;
use tracegen::op::OpClass;

use super::Core;
use crate::fastpath;
use crate::l3iface::{DirectPort, LastLevel, WarmPort};

impl<S: Sink> Core<S> {
    /// Performs one latency-free data access: DTLB, L1D, then (fused
    /// lookup-plus-install) L2, then the last-level organization, with
    /// full state updates and zero timing. The L2 install moves ahead of
    /// the L3 request — sound because the request only touches L3/port
    /// state — while the victim's inclusion invalidations and writeback
    /// stay behind it, so every component sees the same request order as
    /// the split lookup/fill sequence.
    pub(super) fn functional_data_access(
        &mut self,
        addr: Address,
        write: bool,
        now: Cycle,
        port: &mut impl WarmPort,
    ) {
        // Fast path: one probe per structure with the hit or miss side
        // committed in place — `Tlb::access`/`Cache::access` are exactly
        // lookup-then-commit, so the walk is the reference sequence minus
        // the duplicated finds a fallback re-walk would pay.
        let l1d_hit = if self.fast_path {
            fastpath::functional_walk(&mut self.dtlb, &mut self.l1d, addr, write)
        } else {
            self.dtlb.access(addr);
            self.l1d.access(addr, write, self.id).is_hit()
        };
        if l1d_hit {
            self.fast.data_fast_hits += u64::from(self.fast_path);
        } else {
            self.fast.data_slow += u64::from(self.fast_path);
            let (l2, ev) = self.l2.access_fill(addr, write, self.id);
            if !l2.is_hit() {
                self.warm_l3_request(addr, write, now, port);
                self.finish_l2_victim(ev, port, now);
            }
            self.fill_l1d(addr, write);
        }
    }

    /// Functionally retires every instruction a detailed window left in
    /// flight and resets the pipeline to the quiescent state, preparing
    /// the core for a functional-warming gap (or a snapshot).
    ///
    /// In-flight instructions were already fetched — their I-side
    /// accesses and branch-predictor updates happened at fetch time, and
    /// issued entries performed their data accesses at issue — so the
    /// drain walks the ROB and then the fetch queue in program order and
    /// performs only the *missing* state updates: the data access of
    /// every not-yet-issued memory op (addresses were ASID-tagged at
    /// fetch and must not be re-tagged). Each drained instruction counts
    /// as committed, so the trace stream advances without a gap.
    ///
    /// The pipeline reset drops timing-only state: outstanding MSHR fills
    /// (their blocks were installed when the misses issued), the ready
    /// ring, the branch-redirect gate and the fetch stall. After the
    /// drain [`is_quiescent`](Self::is_quiescent) holds by construction.
    pub fn drain_pipeline(&mut self, now: Cycle, l3: &mut dyn LastLevel) {
        let mut port = DirectPort { l3 };
        while let Some(e) = self.rob.pop_front() {
            if !e.issued && e.class.is_mem() {
                if let Some(addr) = e.addr {
                    self.functional_data_access(addr, e.class == OpClass::Store, now, &mut port);
                }
            }
            self.committed += 1;
        }
        while let Some((op, _)) = self.fetch_queue.pop_front() {
            if op.class.is_mem() {
                if let Some(addr) = op.addr {
                    self.functional_data_access(addr, op.class == OpClass::Store, now, &mut port);
                }
            }
            self.committed += 1;
        }
        self.mshr.clear();
        self.lsq_occupancy = 0;
        self.next_seq = 1;
        self.waiting_branch = None;
        self.fetch_resume_at = Cycle::ZERO;
        self.ready_ring.fill(0);
        self.issue_hint = 0;
    }
}

#[cfg(test)]
mod tests {
    use simcore::config::MachineConfig;
    use simcore::rng::SimRng;
    use simcore::types::{CoreId, Cycle};
    use tracegen::profile::{AppProfileBuilder, MemoryMix};
    use tracegen::TraceGenerator;

    use crate::core::Core;
    use crate::l3iface::FixedLatencyL3;

    fn memory_heavy_profile() -> tracegen::AppProfile {
        AppProfileBuilder::new("drainy")
            .loads(0.3)
            .stores(0.1)
            .branches(0.1)
            .predictability(0.85)
            .mix(MemoryMix {
                l1_resident: 0.3,
                l2_resident: 0.2,
                l3_hot: 0.3,
                streaming: 0.2,
            })
            .hot_kb(1024)
            .stream_kb(8 * 1024)
            .build()
            .unwrap()
    }

    fn stepped_core(cycles: u64) -> (Core, FixedLatencyL3) {
        let cfg = MachineConfig::baseline();
        let gen = TraceGenerator::new(&memory_heavy_profile(), SimRng::seed_from(17));
        let mut core = Core::new(CoreId::from_index(0), &cfg, gen);
        let mut l3 = FixedLatencyL3::new(19);
        for c in 0..cycles {
            core.step(Cycle::new(c), &mut l3);
        }
        (core, l3)
    }

    #[test]
    fn drain_reaches_quiescence() {
        let (mut core, mut l3) = stepped_core(5_000);
        assert!(
            !core.is_quiescent(),
            "a timed run must leave in-flight state for this test to bite"
        );
        core.drain_pipeline(Cycle::new(5_000), &mut l3);
        assert!(core.is_quiescent());
        // A quiescent core can be snapshotted.
        let mut w = simcore::snapshot::SnapshotWriter::new();
        core.save_state(&mut w).expect("drained core snapshots");
    }

    #[test]
    fn drain_retires_every_in_flight_instruction() {
        let (mut core, mut l3) = stepped_core(5_000);
        let committed_before = core.committed();
        let in_flight = core.rob.len() + core.fetch_queue.len();
        assert!(in_flight > 0);
        core.drain_pipeline(Cycle::new(5_000), &mut l3);
        assert_eq!(core.committed(), committed_before + in_flight as u64);
    }

    #[test]
    fn drained_core_resumes_like_a_fresh_one() {
        // After a drain, stepping again makes progress and stays
        // deterministic: two identical histories drain to identical state.
        let run = || {
            let (mut core, mut l3) = stepped_core(4_000);
            core.drain_pipeline(Cycle::new(4_000), &mut l3);
            for c in 4_000..8_000 {
                core.step(Cycle::new(c), &mut l3);
            }
            (core.committed(), core.stats(Cycle::new(8_000)))
        };
        let (ca, sa) = run();
        let (cb, sb) = run();
        assert_eq!(ca, cb);
        assert_eq!(sa, sb);
        assert!(sa.committed > 0);
    }
}
