//! Offline stand-in for the `criterion` crate.
//!
//! The workspace's bench targets (`crates/bench/benches/*.rs`) are written
//! against criterion's API, but this build environment has no network access
//! and no crates.io mirror. This crate covers exactly the surface those
//! benches use — `Criterion`, `bench_function`, `benchmark_group`, `iter`,
//! `iter_batched`, `BatchSize` and the `criterion_group!`/`criterion_main!`
//! macros — with a simple fixed-budget timer instead of criterion's
//! statistical machinery. Numbers it prints are indicative, not rigorous.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// here: setup runs once per measured invocation and is excluded from the
/// timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    measurement: Duration,
    /// (total time measured, iterations run) — read by the harness.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(measurement: Duration) -> Self {
        Bencher {
            measurement,
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Calls `body` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            std_black_box(body());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Like [`iter`](Self::iter) but with untimed per-invocation setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        while spent < self.measurement {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
        }
        self.elapsed = spent;
        self.iters = iters;
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    measurement: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
            filter: None,
        }
    }
}

impl Criterion {
    /// Reads the benchmark-name filter from the command line (the only
    /// argument form this stub honours).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().nth(1).filter(|a| !a.starts_with('-'));
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) -> &mut Self {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return self;
            }
        }
        let mut b = Bencher::new(self.measurement);
        body(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            measurement: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    measurement: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; there is no separate warm-up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        if let Some(f) = &self.parent.filter {
            if !full.contains(f.as_str()) {
                return self;
            }
        }
        let budget = self.measurement.unwrap_or(self.parent.measurement);
        let mut b = Bencher::new(budget);
        body(&mut b);
        report(&full, &b);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<40} (no iterations completed)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() / u128::from(b.iters);
    println!("{name:<40} {ns_per_iter:>12} ns/iter ({} iters)", b.iters);
}

/// Bundles benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports_iters() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.iters > 0);
        assert_eq!(b.iters, count);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }

    #[test]
    fn group_runs_under_budget() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = false;
        g.bench_function("b", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
