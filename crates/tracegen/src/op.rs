//! The micro-operation vocabulary consumed by the out-of-order core model.

use simcore::types::Address;
use std::fmt;

/// Functional classes of micro-operations, mirroring the functional units
/// of Table 1 (4 INT ALUs, 4 FP ALUs, 1 INT mul/div, 1 FP mul/div) plus
/// memory and control operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer operation (1-cycle ALU).
    IntAlu,
    /// Floating-point add/compare (2-cycle FP ALU).
    FpAlu,
    /// Integer multiply/divide (single shared unit).
    IntMul,
    /// Floating-point multiply/divide (single shared unit).
    FpMul,
    /// Data load; `addr` is the effective address.
    Load,
    /// Data store; retires through the store queue without blocking.
    Store,
    /// Conditional branch; `taken` is the architected outcome.
    Branch,
}

impl OpClass {
    /// Execution latency on its functional unit (memory latency for loads
    /// comes from the cache hierarchy instead).
    #[inline]
    pub const fn base_latency(self) -> u64 {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::Store => 1,
            OpClass::FpAlu => 2,
            OpClass::IntMul => 3,
            OpClass::Load => 1,
            OpClass::FpMul => 4,
        }
    }

    /// Whether the op accesses data memory.
    #[inline]
    pub const fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int",
            OpClass::FpAlu => "fp",
            OpClass::IntMul => "imul",
            OpClass::FpMul => "fmul",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// One dynamic micro-operation produced by a [`TraceGenerator`].
///
/// Dependencies are expressed as *distances*: `dep1 = 3` means this op
/// reads the value produced by the op three positions earlier in program
/// order (`0` means no dependency). The core model resolves distances
/// against its reorder buffer, which bounds them naturally.
///
/// [`TraceGenerator`]: crate::generator::TraceGenerator
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Program counter of the instruction.
    pub pc: Address,
    /// Functional class.
    pub class: OpClass,
    /// Effective address for loads and stores.
    pub addr: Option<Address>,
    /// Architected branch outcome (meaningful only for branches).
    pub taken: bool,
    /// Distance (in ops) back to the first source operand's producer; 0 = none.
    pub dep1: u32,
    /// Distance back to the second source operand's producer; 0 = none.
    pub dep2: u32,
    /// Execution latency on the functional unit.
    pub latency: u64,
}

impl MicroOp {
    /// A convenience constructor for non-memory, dependency-free ops
    /// (used by tests).
    pub fn nop(pc: Address) -> Self {
        MicroOp {
            pc,
            class: OpClass::IntAlu,
            addr: None,
            taken: false,
            dep1: 0,
            dep2: 0,
            latency: OpClass::IntAlu.base_latency(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_ordered_sensibly() {
        assert_eq!(OpClass::IntAlu.base_latency(), 1);
        assert!(OpClass::FpMul.base_latency() > OpClass::FpAlu.base_latency());
        assert!(OpClass::IntMul.base_latency() > OpClass::IntAlu.base_latency());
    }

    #[test]
    fn memory_classification() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
    }

    #[test]
    fn nop_has_no_deps() {
        let op = MicroOp::nop(Address::new(0x400000));
        assert_eq!(op.dep1, 0);
        assert_eq!(op.dep2, 0);
        assert_eq!(op.class, OpClass::IntAlu);
    }

    #[test]
    fn display_nonempty() {
        for c in [
            OpClass::IntAlu,
            OpClass::FpAlu,
            OpClass::IntMul,
            OpClass::FpMul,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
        ] {
            assert!(!format!("{c}").is_empty());
        }
    }
}
