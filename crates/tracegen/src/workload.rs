//! Multiprogrammed workload construction (Section 3 of the paper).
//!
//! "In each experiment, four randomly picked applications are run in
//! parallel. Each application is randomly forwarded between 0.5 and 1.5
//! billion instructions and then we simulate two hundred million cycles."
//!
//! [`WorkloadPool::random_mixes`] reproduces exactly that protocol
//! (deterministically, from a seed); the simulated cycle count is chosen
//! by the experiment runner.

use std::sync::Arc;

use simcore::rng::SimRng;

use crate::spec::SpecApp;

/// One multiprogrammed experiment: which application runs on each core and
/// how far it was fast-forwarded before measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    /// The application assigned to each core, in core order.
    pub apps: Vec<SpecApp>,
    /// Instructions fast-forwarded per core (0.5–1.5 billion).
    pub forwards: Vec<u64>,
}

impl Mix {
    /// A human-readable label such as `"ammp+art+mcf+gzip"`.
    pub fn label(&self) -> String {
        self.apps
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Number of cores the mix occupies.
    pub fn cores(&self) -> usize {
        self.apps.len()
    }
}

/// Factory for the randomized experiment sets of Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadPool;

impl WorkloadPool {
    /// Lower bound of the random fast-forward, in instructions.
    pub const FORWARD_MIN: u64 = 500_000_000;
    /// Upper bound of the random fast-forward, in instructions.
    pub const FORWARD_MAX: u64 = 1_500_000_000;

    /// Draws `n` mixes of `cores` applications each from `pool`
    /// (with replacement, as the paper's three-`ammp`-plus-`wupwise`
    /// experiment shows duplicates occur), each with an independent
    /// random fast-forward.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty or `cores` is zero.
    pub fn random_mixes(pool: &[SpecApp], cores: usize, n: usize, seed: u64) -> Vec<Mix> {
        assert!(!pool.is_empty(), "application pool must be nonempty");
        assert!(cores > 0, "mixes need at least one core");
        let mut rng = SimRng::seed_from(seed);
        (0..n)
            .map(|_| {
                let apps = (0..cores)
                    .map(|_| pool[rng.below(pool.len() as u64) as usize])
                    .collect();
                let forwards = (0..cores)
                    .map(|_| rng.range(Self::FORWARD_MIN, Self::FORWARD_MAX))
                    .collect();
                Mix { apps, forwards }
            })
            .collect()
    }

    /// All single-application "mixes" (one app replicated on every core),
    /// used to classify applications for Figure 5 and to sweep cache
    /// sensitivity for Figure 3.
    pub fn homogeneous(app: SpecApp, cores: usize, seed: u64) -> Mix {
        let mut rng = SimRng::seed_from(seed ^ app as u64);
        Mix {
            apps: vec![app; cores],
            forwards: (0..cores)
                .map(|_| rng.range(Self::FORWARD_MIN, Self::FORWARD_MAX))
                .collect(),
        }
    }
}

/// A *parallel* workload: `threads` instances of one application that,
/// in addition to their private working sets, read a common shared
/// region — the setting the paper defers to future work ("we hypothesize
/// that the new scheme will be effective also for such workloads").
///
/// Returns one profile handle per thread plus matching fast-forward
/// counts. All threads run the *same* program, so the handles share one
/// [`Arc`] allocation instead of cloning the profile per thread.
///
/// # Example
///
/// ```
/// use tracegen::workload::parallel_workload;
/// use tracegen::spec::SpecApp;
/// let (profiles, forwards) = parallel_workload(SpecApp::Galgel, 4, 0.4, 2048, 7);
/// assert_eq!(profiles.len(), 4);
/// assert!(profiles[0].shared_read_frac > 0.0);
/// assert_eq!(forwards.len(), 4);
/// ```
pub fn parallel_workload(
    app: SpecApp,
    threads: usize,
    shared_read_frac: f64,
    shared_kb: u64,
    seed: u64,
) -> (Vec<Arc<crate::profile::AppProfile>>, Vec<u64>) {
    let mut rng = SimRng::seed_from(seed ^ 0x9a7a_11e1);
    let mut profile = app.profile().clone();
    profile.shared_read_frac = shared_read_frac;
    profile.shared_kb = shared_kb;
    let forwards = (0..threads)
        .map(|_| rng.range(WorkloadPool::FORWARD_MIN, WorkloadPool::FORWARD_MAX))
        .collect();
    let shared = Arc::new(profile);
    (vec![shared; threads], forwards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_deterministic_per_seed() {
        let pool = SpecApp::intensive_pool();
        let a = WorkloadPool::random_mixes(&pool, 4, 10, 42);
        let b = WorkloadPool::random_mixes(&pool, 4, 10, 42);
        assert_eq!(a, b);
        let c = WorkloadPool::random_mixes(&pool, 4, 10, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn mixes_have_right_shape() {
        let pool = SpecApp::intensive_pool();
        let mixes = WorkloadPool::random_mixes(&pool, 4, 25, 7);
        assert_eq!(mixes.len(), 25);
        for m in &mixes {
            assert_eq!(m.cores(), 4);
            assert_eq!(m.forwards.len(), 4);
            for f in &m.forwards {
                assert!((WorkloadPool::FORWARD_MIN..WorkloadPool::FORWARD_MAX).contains(f));
            }
            for a in &m.apps {
                assert!(pool.contains(a));
            }
        }
    }

    #[test]
    fn duplicates_can_occur() {
        // With replacement over 16 apps, 25 mixes of 4 contain a duplicate
        // with overwhelming probability.
        let pool = SpecApp::intensive_pool();
        let mixes = WorkloadPool::random_mixes(&pool, 4, 25, 1);
        let any_dup = mixes.iter().any(|m| {
            let mut apps = m.apps.clone();
            apps.sort();
            apps.windows(2).any(|w| w[0] == w[1])
        });
        assert!(any_dup);
    }

    #[test]
    fn homogeneous_mix_replicates_app() {
        let m = WorkloadPool::homogeneous(SpecApp::Mcf, 4, 9);
        assert_eq!(m.apps, vec![SpecApp::Mcf; 4]);
        assert_eq!(m.label(), "mcf+mcf+mcf+mcf");
    }

    #[test]
    fn parallel_workload_shares_one_profile() {
        let (profiles, forwards) = parallel_workload(SpecApp::Galgel, 4, 0.4, 2048, 7);
        assert_eq!(profiles.len(), 4);
        assert_eq!(forwards.len(), 4);
        // Every thread sees the identical profile — one allocation, not
        // per-thread clones.
        for p in &profiles[1..] {
            assert!(Arc::ptr_eq(&profiles[0], p));
            assert_eq!(**p, *profiles[0]);
        }
        assert!((profiles[0].shared_read_frac - 0.4).abs() < 1e-12);
        assert_eq!(profiles[0].shared_kb, 2048);
    }

    #[test]
    fn label_joins_names() {
        let pool = [SpecApp::Ammp, SpecApp::Art];
        let mixes = WorkloadPool::random_mixes(&pool, 2, 1, 3);
        let label = mixes[0].label();
        assert!(label.contains('+'));
    }
}
