//! The 24 calibrated SPEC2000-like application profiles.
//!
//! The paper uses all SPEC2000 applications with reference inputs except
//! `vortex` and `sixtrack` (simulator incompatibilities) — 11 integer and
//! 13 floating-point programs. Each profile below is a synthetic stand-in
//! calibrated against the paper's published observations:
//!
//! - **Figure 3** (misses vs blocks/set): `mcf` needs only one block per
//!   set (the rest are cold/streaming misses), `gzip` saturates at four,
//!   while `ammp`, `art`, `twolf` and `vpr` keep improving beyond four —
//!   they are the applications Figure 7 shows benefiting from a
//!   four-times-larger private cache.
//! - **Figure 5** (classification): applications with more than nine
//!   last-level accesses per thousand cycles are "last-level cache
//!   intensive". The expected classification is recorded in
//!   [`SpecApp::is_llc_intensive`] and verified by integration tests.
//! - **Section 4.3**'s `wupwise` anecdote: a non-intensive program with
//!   high IPC whose modest hot set still loses performance when the
//!   adaptive scheme re-assigns its space to a needier neighbor (`ammp`).
//!
//! Working-set sizes are quoted in KiB; dividing `hot_kb` by 256 gives the
//! demanded blocks-per-set in the baseline 4096-set, 64-byte-block L3.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use crate::profile::{AppProfile, AppProfileBuilder, MemoryMix};

/// The SPEC2000 applications simulated by the paper (minus `vortex` and
/// `sixtrack`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SpecApp {
    // Integer suite.
    Gzip,
    Vpr,
    Gcc,
    Mcf,
    Crafty,
    Parser,
    Eon,
    Perlbmk,
    Gap,
    Bzip2,
    Twolf,
    // Floating-point suite.
    Wupwise,
    Swim,
    Mgrid,
    Applu,
    Mesa,
    Galgel,
    Art,
    Equake,
    Facerec,
    Ammp,
    Lucas,
    Fma3d,
    Apsi,
}

impl SpecApp {
    /// All 24 applications, integer suite first.
    pub const ALL: [SpecApp; 24] = [
        SpecApp::Gzip,
        SpecApp::Vpr,
        SpecApp::Gcc,
        SpecApp::Mcf,
        SpecApp::Crafty,
        SpecApp::Parser,
        SpecApp::Eon,
        SpecApp::Perlbmk,
        SpecApp::Gap,
        SpecApp::Bzip2,
        SpecApp::Twolf,
        SpecApp::Wupwise,
        SpecApp::Swim,
        SpecApp::Mgrid,
        SpecApp::Applu,
        SpecApp::Mesa,
        SpecApp::Galgel,
        SpecApp::Art,
        SpecApp::Equake,
        SpecApp::Facerec,
        SpecApp::Ammp,
        SpecApp::Lucas,
        SpecApp::Fma3d,
        SpecApp::Apsi,
    ];

    /// The lowercase SPEC name.
    pub const fn name(self) -> &'static str {
        match self {
            SpecApp::Gzip => "gzip",
            SpecApp::Vpr => "vpr",
            SpecApp::Gcc => "gcc",
            SpecApp::Mcf => "mcf",
            SpecApp::Crafty => "crafty",
            SpecApp::Parser => "parser",
            SpecApp::Eon => "eon",
            SpecApp::Perlbmk => "perlbmk",
            SpecApp::Gap => "gap",
            SpecApp::Bzip2 => "bzip2",
            SpecApp::Twolf => "twolf",
            SpecApp::Wupwise => "wupwise",
            SpecApp::Swim => "swim",
            SpecApp::Mgrid => "mgrid",
            SpecApp::Applu => "applu",
            SpecApp::Mesa => "mesa",
            SpecApp::Galgel => "galgel",
            SpecApp::Art => "art",
            SpecApp::Equake => "equake",
            SpecApp::Facerec => "facerec",
            SpecApp::Ammp => "ammp",
            SpecApp::Lucas => "lucas",
            SpecApp::Fma3d => "fma3d",
            SpecApp::Apsi => "apsi",
        }
    }

    /// Expected Figure 5 classification: does the application issue more
    /// than nine last-level accesses per thousand cycles?
    pub const fn is_llc_intensive(self) -> bool {
        !matches!(
            self,
            SpecApp::Crafty
                | SpecApp::Eon
                | SpecApp::Perlbmk
                | SpecApp::Gap
                | SpecApp::Wupwise
                | SpecApp::Mesa
                | SpecApp::Facerec
                | SpecApp::Fma3d
        )
    }

    /// The last-level-cache-intensive applications (Figure 6/7/11 pool).
    pub fn intensive_pool() -> Vec<SpecApp> {
        SpecApp::ALL
            .into_iter()
            .filter(|a| a.is_llc_intensive())
            .collect()
    }

    /// The calibrated profile for this application.
    #[allow(clippy::expect_used)] // the profile table covers SpecApp::ALL; pinned by unit test
    pub fn profile(self) -> &'static AppProfile {
        profiles()
            .iter()
            .find(|p| p.name == self.name())
            .expect("every SpecApp has a profile")
    }
}

impl fmt::Display for SpecApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown application name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecAppError(String);

impl fmt::Display for ParseSpecAppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown SPEC2000 application name: {}", self.0)
    }
}

impl std::error::Error for ParseSpecAppError {}

impl FromStr for SpecApp {
    type Err = ParseSpecAppError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SpecApp::ALL
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| ParseSpecAppError(s.to_owned()))
    }
}

fn mix(l1: f64, l2: f64, hot: f64, stream: f64) -> MemoryMix {
    MemoryMix {
        l1_resident: l1,
        l2_resident: l2,
        l3_hot: hot,
        streaming: stream,
    }
}

fn profiles() -> &'static Vec<AppProfile> {
    static PROFILES: OnceLock<Vec<AppProfile>> = OnceLock::new();
    PROFILES.get_or_init(build_profiles)
}

#[allow(clippy::expect_used)] // static calibrated constants; validity pinned by unit test
fn build_profiles() -> Vec<AppProfile> {
    let build = |b: AppProfileBuilder| b.build().expect("calibrated profile is valid");
    vec![
        // ---- Integer suite -------------------------------------------------
        // gzip: the Figure 3 example that needs four blocks/set (1 MiB hot).
        build(
            AppProfileBuilder::new("gzip")
                .loads(0.22)
                .stores(0.08)
                .branches(0.17)
                .dep_mean(3.0)
                .predictability(0.93)
                .mix(mix(0.72, 0.2, 0.07, 0.01))
                .hot_loop(0.5)
                .l2_kb(128)
                .hot_kb(768)
                .stream_kb(8 * 1024)
                .code_kb(24),
        ),
        // vpr: cache-sensitive beyond four ways (Figure 7's 4x gainers).
        build(
            AppProfileBuilder::new("vpr")
                .loads(0.26)
                .stores(0.09)
                .branches(0.16)
                .dep_mean(3.5)
                .predictability(0.90)
                .mix(mix(0.64, 0.21, 0.13, 0.02))
                .hot_loop(0.25)
                .hot_skew(1.2)
                .l2_kb(128)
                .hot_kb(1792)
                .stream_kb(8 * 1024)
                .code_kb(32),
        ),
        // gcc: borderline intensive, large code footprint.
        build(
            AppProfileBuilder::new("gcc")
                .loads(0.25)
                .stores(0.11)
                .branches(0.18)
                .dep_mean(3.0)
                .predictability(0.92)
                .mix(mix(0.72, 0.2, 0.055, 0.025))
                .hot_loop(0.3)
                .l2_kb(128)
                .hot_kb(512)
                .stream_kb(16 * 1024)
                .code_kb(64),
        ),
        // mcf: the Figure 3 innermost curve — one block/set suffices, the
        // rest is pointer-chasing cold misses (low ILP, huge stream).
        build(
            AppProfileBuilder::new("mcf")
                .loads(0.30)
                .stores(0.09)
                .branches(0.17)
                .dep_mean(4.0)
                .predictability(0.88)
                .mix(mix(0.45, 0.19, 0.1, 0.26))
                .l2_kb(64)
                .hot_kb(256)
                .stream_kb(64 * 1024)
                .code_kb(16),
        ),
        // crafty: L1/L2 resident, fast.
        build(
            AppProfileBuilder::new("crafty")
                .loads(0.26)
                .stores(0.07)
                .branches(0.14)
                .dep_mean(3.5)
                .predictability(0.93)
                .mix(mix(0.9, 0.085, 0.01, 0.005))
                .l2_kb(56)
                .hot_kb(256)
                .stream_kb(2 * 1024)
                .code_kb(48),
        ),
        // parser: moderately intensive, modest hot set.
        build(
            AppProfileBuilder::new("parser")
                .loads(0.25)
                .stores(0.09)
                .branches(0.17)
                .dep_mean(2.8)
                .predictability(0.91)
                .mix(mix(0.7, 0.22, 0.065, 0.015))
                .hot_loop(0.4)
                .l2_kb(128)
                .hot_kb(640)
                .stream_kb(8 * 1024)
                .code_kb(32),
        ),
        // eon: C++ renderer, cache friendly, some FP.
        build(
            AppProfileBuilder::new("eon")
                .loads(0.24)
                .stores(0.10)
                .branches(0.13)
                .fp(0.30)
                .dep_mean(4.0)
                .predictability(0.95)
                .mix(mix(0.9, 0.08, 0.015, 0.005))
                .l2_kb(56)
                .hot_kb(128)
                .stream_kb(1024)
                .code_kb(48),
        ),
        // perlbmk: interpreter, large code, small data.
        build(
            AppProfileBuilder::new("perlbmk")
                .loads(0.25)
                .stores(0.11)
                .branches(0.16)
                .dep_mean(3.2)
                .predictability(0.94)
                .mix(mix(0.88, 0.104, 0.012, 0.004))
                .l2_kb(56)
                .hot_kb(256)
                .stream_kb(2 * 1024)
                .code_kb(56),
        ),
        // gap: group theory, mostly L2 resident.
        build(
            AppProfileBuilder::new("gap")
                .loads(0.24)
                .stores(0.10)
                .branches(0.14)
                .dep_mean(3.0)
                .predictability(0.94)
                .mix(mix(0.84, 0.13, 0.02, 0.01))
                .l2_kb(56)
                .hot_kb(384)
                .stream_kb(4 * 1024)
                .code_kb(40),
        ),
        // bzip2: block-sorting compressor, 1 MiB-ish working set.
        build(
            AppProfileBuilder::new("bzip2")
                .loads(0.23)
                .stores(0.10)
                .branches(0.15)
                .dep_mean(3.2)
                .predictability(0.92)
                .mix(mix(0.68, 0.22, 0.08, 0.02))
                .hot_loop(0.4)
                .l2_kb(128)
                .hot_kb(1024)
                .stream_kb(16 * 1024)
                .code_kb(16),
        ),
        // twolf: place & route, sensitive beyond four ways.
        build(
            AppProfileBuilder::new("twolf")
                .loads(0.25)
                .stores(0.08)
                .branches(0.16)
                .dep_mean(3.5)
                .predictability(0.89)
                .mix(mix(0.6, 0.24, 0.14, 0.02))
                .hot_loop(0.25)
                .hot_skew(1.2)
                .l2_kb(128)
                .hot_kb(1536)
                .stream_kb(4 * 1024)
                .code_kb(32),
        ),
        // ---- Floating-point suite ------------------------------------------
        // wupwise: high-IPC, non-intensive, but with a real (modest) hot
        // set — the Section 4.3 anecdote victim.
        build(
            AppProfileBuilder::new("wupwise")
                .loads(0.20)
                .stores(0.08)
                .branches(0.08)
                .fp(0.60)
                .dep_mean(5.0)
                .predictability(0.97)
                .mix(mix(0.84, 0.138, 0.018, 0.004))
                .l2_kb(56)
                .hot_kb(768)
                .stream_kb(8 * 1024)
                .code_kb(24),
        ),
        // swim: streaming vector code.
        build(
            AppProfileBuilder::new("swim")
                .loads(0.30)
                .stores(0.15)
                .branches(0.04)
                .fp(0.70)
                .dep_mean(6.0)
                .predictability(0.98)
                .mix(mix(0.5, 0.2, 0.05, 0.25))
                .l2_kb(64)
                .hot_kb(512)
                .stream_kb(96 * 1024)
                .code_kb(8),
        ),
        // mgrid: multigrid solver, streaming with some reuse.
        build(
            AppProfileBuilder::new("mgrid")
                .loads(0.32)
                .stores(0.10)
                .branches(0.04)
                .fp(0.70)
                .dep_mean(6.0)
                .predictability(0.98)
                .mix(mix(0.64, 0.2, 0.08, 0.08))
                .l2_kb(64)
                .hot_kb(384)
                .stream_kb(56 * 1024)
                .code_kb(8),
        ),
        // applu: PDE solver, mixed streaming/reuse.
        build(
            AppProfileBuilder::new("applu")
                .loads(0.30)
                .stores(0.12)
                .branches(0.05)
                .fp(0.70)
                .dep_mean(5.0)
                .predictability(0.97)
                .mix(mix(0.62, 0.21, 0.1, 0.07))
                .l2_kb(128)
                .hot_kb(768)
                .stream_kb(40 * 1024)
                .code_kb(16),
        ),
        // mesa: software renderer, cache friendly.
        build(
            AppProfileBuilder::new("mesa")
                .loads(0.24)
                .stores(0.11)
                .branches(0.10)
                .fp(0.50)
                .dep_mean(4.0)
                .predictability(0.95)
                .mix(mix(0.894, 0.09, 0.012, 0.004))
                .l2_kb(56)
                .hot_kb(256)
                .stream_kb(4 * 1024)
                .code_kb(64),
        ),
        // galgel: fluid dynamics, sensitive ~5 blocks/set.
        build(
            AppProfileBuilder::new("galgel")
                .loads(0.28)
                .stores(0.09)
                .branches(0.06)
                .fp(0.60)
                .dep_mean(4.0)
                .predictability(0.96)
                .mix(mix(0.61, 0.22, 0.15, 0.02))
                .hot_loop(0.25)
                .hot_skew(1.2)
                .l2_kb(128)
                .hot_kb(1280)
                .stream_kb(8 * 1024)
                .code_kb(16),
        ),
        // art: neural-net simulator — the classic cache-sensitive victim
        // (10 blocks/set hot set).
        build(
            AppProfileBuilder::new("art")
                .loads(0.28)
                .stores(0.08)
                .branches(0.10)
                .fp(0.50)
                .dep_mean(4.5)
                .predictability(0.95)
                .mix(mix(0.47, 0.2, 0.3, 0.03))
                .hot_loop(0.25)
                .hot_skew(1.2)
                .l2_kb(128)
                .hot_kb(2560)
                .stream_kb(4 * 1024)
                .code_kb(8),
        ),
        // equake: earthquake simulation, sparse streaming.
        build(
            AppProfileBuilder::new("equake")
                .loads(0.28)
                .stores(0.10)
                .branches(0.08)
                .fp(0.50)
                .dep_mean(3.5)
                .predictability(0.95)
                .mix(mix(0.63, 0.2, 0.1, 0.07))
                .l2_kb(64)
                .hot_kb(512)
                .stream_kb(32 * 1024)
                .code_kb(16),
        ),
        // facerec: face recognition, mostly L2-resident.
        build(
            AppProfileBuilder::new("facerec")
                .loads(0.26)
                .stores(0.09)
                .branches(0.07)
                .fp(0.60)
                .dep_mean(4.5)
                .predictability(0.96)
                .mix(mix(0.86, 0.122, 0.014, 0.004))
                .l2_kb(56)
                .hot_kb(384)
                .stream_kb(8 * 1024)
                .code_kb(24),
        ),
        // ammp: molecular dynamics — the most cache-hungry application in
        // the paper (12 blocks/set hot set, very low IPC).
        build(
            AppProfileBuilder::new("ammp")
                .loads(0.30)
                .stores(0.08)
                .branches(0.08)
                .fp(0.60)
                .dep_mean(4.5)
                .predictability(0.93)
                .mix(mix(0.4, 0.14, 0.4, 0.06))
                .hot_loop(0.25)
                .hot_skew(1.2)
                .l2_kb(128)
                .hot_kb(3072)
                .stream_kb(16 * 1024)
                .code_kb(16),
        ),
        // lucas: FFT-based primality, streaming.
        build(
            AppProfileBuilder::new("lucas")
                .loads(0.28)
                .stores(0.12)
                .branches(0.03)
                .fp(0.70)
                .dep_mean(5.0)
                .predictability(0.98)
                .mix(mix(0.55, 0.19, 0.04, 0.22))
                .l2_kb(64)
                .hot_kb(256)
                .stream_kb(80 * 1024)
                .code_kb(8),
        ),
        // fma3d: crash simulation, cache friendly at this scale.
        build(
            AppProfileBuilder::new("fma3d")
                .loads(0.26)
                .stores(0.11)
                .branches(0.08)
                .fp(0.60)
                .dep_mean(4.0)
                .predictability(0.95)
                .mix(mix(0.86, 0.122, 0.014, 0.004))
                .l2_kb(56)
                .hot_kb(384)
                .stream_kb(8 * 1024)
                .code_kb(48),
        ),
        // apsi: meteorology, moderately sensitive.
        build(
            AppProfileBuilder::new("apsi")
                .loads(0.27)
                .stores(0.11)
                .branches(0.06)
                .fp(0.60)
                .dep_mean(4.0)
                .predictability(0.96)
                .mix(mix(0.65, 0.21, 0.11, 0.03))
                .hot_loop(0.4)
                .l2_kb(128)
                .hot_kb(896)
                .stream_kb(16 * 1024)
                .code_kb(24),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_24_apps_have_valid_profiles() {
        assert_eq!(SpecApp::ALL.len(), 24);
        for app in SpecApp::ALL {
            let p = app.profile();
            p.validate().expect("profile validates");
            assert_eq!(p.name, app.name());
        }
    }

    #[test]
    fn excluded_apps_are_absent() {
        assert!(SpecApp::from_str("vortex").is_err());
        assert!(SpecApp::from_str("sixtrack").is_err());
    }

    #[test]
    fn classification_has_sixteen_intensive_eight_not() {
        let intensive = SpecApp::intensive_pool();
        assert_eq!(intensive.len(), 16);
        assert!(intensive.contains(&SpecApp::Mcf));
        assert!(intensive.contains(&SpecApp::Ammp));
        assert!(!intensive.contains(&SpecApp::Wupwise));
        assert!(!intensive.contains(&SpecApp::Crafty));
    }

    #[test]
    fn figure3_shapes_are_encoded() {
        // mcf fits in one block/set; gzip needs four; ammp/art/twolf/vpr
        // demand more than four (they benefit from caches larger than the
        // 4-way private slice).
        let bps = |a: SpecApp| a.profile().regions.hot_blocks_per_set(4096, 64);
        assert!(bps(SpecApp::Mcf) <= 1.0);
        // gzip: 3 hot blocks/set plus one slack way to absorb streaming
        // interference = "requires four blocks per set".
        assert!((3.0..4.5).contains(&bps(SpecApp::Gzip)));
        for a in [SpecApp::Ammp, SpecApp::Art, SpecApp::Twolf, SpecApp::Vpr] {
            assert!(bps(a) > 4.0, "{a} must demand more than the private slice");
        }
    }

    #[test]
    fn intensity_knob_separates_classes() {
        // Crude static proxy for Figure 5: fraction of data refs that can
        // reach the L3 (hot + streaming) times memory fraction.
        for app in SpecApp::ALL {
            let p = app.profile();
            let l3_pressure = p.mem_frac() * (p.mix.l3_hot + p.mix.streaming);
            if app.is_llc_intensive() {
                assert!(
                    l3_pressure > 0.015,
                    "{app} should pressure the L3 ({l3_pressure})"
                );
            } else {
                assert!(
                    l3_pressure < 0.015,
                    "{app} should be gentle on the L3 ({l3_pressure})"
                );
            }
        }
    }

    #[test]
    fn parse_round_trips() {
        for app in SpecApp::ALL {
            assert_eq!(app.name().parse::<SpecApp>().unwrap(), app);
        }
        let err = "quux".parse::<SpecApp>().unwrap_err();
        assert!(err.to_string().contains("quux"));
    }

    #[test]
    fn wupwise_keeps_modest_hot_set() {
        // The Section 4.3 anecdote requires wupwise to be non-intensive
        // yet own a real hot set it can lose.
        let p = SpecApp::Wupwise.profile();
        assert!(!SpecApp::Wupwise.is_llc_intensive());
        assert!(p.regions.hot_blocks_per_set(4096, 64) >= 2.0);
    }
}
