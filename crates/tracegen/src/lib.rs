//! Synthetic SPEC2000-like workloads for the NUCA CMP simulator.
//!
//! The paper drives its SimpleScalar-based simulator with all SPEC2000
//! applications (reference inputs, `vortex` and `sixtrack` excluded).
//! SPEC binaries and traces are proprietary, so this crate substitutes
//! **statistical micro-op generators**: each application is described by an
//! [`AppProfile`] capturing the properties the evaluated mechanisms
//! actually observe —
//!
//! - instruction mix and data-dependency distances (bounds core ILP),
//! - branch pool size and predictability (drives the real predictor),
//! - a hierarchical locality model (L1-resident, L2-resident, L3 "hot"
//!   region sized in blocks-per-set, and a streaming region of cold
//!   misses) that determines per-set associativity demand — the quantity
//!   the adaptive partitioning scheme estimates and trades between cores.
//!
//! [`spec`] provides 24 calibrated profiles named after the SPEC2000
//! applications the paper uses; the calibration targets are the paper's
//! Figure 3 (miss curves vs blocks/set: `mcf` flat after one block, `gzip`
//! saturating at four, `ammp`/`art`/`twolf`/`vpr` improving beyond four)
//! and Figure 5 (last-level-cache intensity classification, threshold
//! nine accesses per thousand cycles).
//!
//! [`workload`] builds the multiprogrammed mixes of Section 3: four
//! randomly picked applications, each independently fast-forwarded.
//!
//! # Example
//!
//! ```
//! use tracegen::spec::SpecApp;
//! use tracegen::generator::TraceGenerator;
//! use simcore::rng::SimRng;
//!
//! let mut gen = TraceGenerator::new(SpecApp::Mcf.profile(), SimRng::seed_from(1));
//! let op = gen.next_op();
//! assert!(op.latency >= 1);
//! ```

pub mod generator;
pub mod op;
pub mod profile;
pub mod spec;
pub mod workload;

pub use generator::TraceGenerator;
pub use op::{MicroOp, OpClass};
pub use profile::{AppProfile, AppProfileBuilder, MemoryMix, RegionLayout};
pub use spec::SpecApp;
pub use workload::{Mix, WorkloadPool};
