//! Application profiles: the statistical description of one benchmark.
//!
//! A profile captures what the cache hierarchy and core pipeline observe
//! about a program. The key component for this paper is the memory
//! locality model: data references are split between an L1-resident
//! region, an L2-resident region, an L3 *hot* region (whose size in
//! blocks-per-set determines how many last-level ways the application can
//! profitably use — the quantity Figure 3 plots) and a *streaming* region
//! that produces compulsory misses no cache size can absorb.

use simcore::error::{ConfigError, Result};

/// How data references distribute over the locality regions.
///
/// The four fractions must sum to 1 (within floating-point tolerance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryMix {
    /// Fraction of data references to the L1-resident region.
    pub l1_resident: f64,
    /// Fraction to the L2-resident region.
    pub l2_resident: f64,
    /// Fraction to the L3 hot region.
    pub l3_hot: f64,
    /// Fraction to the streaming region (compulsory misses).
    pub streaming: f64,
}

impl MemoryMix {
    /// Validates that fractions are non-negative and sum to one.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] otherwise.
    pub fn validate(&self) -> Result<()> {
        let parts = [
            self.l1_resident,
            self.l2_resident,
            self.l3_hot,
            self.streaming,
        ];
        if parts.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err(ConfigError::new("memory mix fractions must be in [0, 1]"));
        }
        let sum: f64 = parts.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(ConfigError::new("memory mix fractions must sum to 1"));
        }
        Ok(())
    }
}

/// Sizes of the locality regions, in KiB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionLayout {
    /// L1-resident region (comfortably under 64 KiB).
    pub l1_kb: u64,
    /// L2-resident region (under 256 KiB).
    pub l2_kb: u64,
    /// L3 hot region; `hot_kb / 256` is the demanded blocks-per-set for
    /// the baseline 4096-set, 64-byte-block last-level cache.
    pub hot_kb: u64,
    /// Streaming region walked sequentially with wrap-around.
    pub stream_kb: u64,
    /// Code footprint driving instruction fetch.
    pub code_kb: u64,
}

impl RegionLayout {
    /// The number of last-level blocks per set this profile's hot region
    /// demands, for a cache with `sets` sets of `block_bytes`-byte blocks.
    pub fn hot_blocks_per_set(&self, sets: u64, block_bytes: u64) -> f64 {
        (self.hot_kb * 1024) as f64 / (sets * block_bytes) as f64
    }

    /// Validates that every region is nonzero.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any region is zero-sized.
    pub fn validate(&self) -> Result<()> {
        if self.l1_kb == 0
            || self.l2_kb == 0
            || self.hot_kb == 0
            || self.stream_kb == 0
            || self.code_kb == 0
        {
            return Err(ConfigError::new("all locality regions must be nonzero"));
        }
        Ok(())
    }
}

/// The statistical description of one application.
///
/// Construct via [`AppProfileBuilder`]; the 24 SPEC2000-like instances
/// live in [`crate::spec`].
///
/// # Example
///
/// ```
/// use tracegen::profile::AppProfileBuilder;
/// let p = AppProfileBuilder::new("toy")
///     .loads(0.25)
///     .stores(0.10)
///     .branches(0.15)
///     .hot_kb(1024)
///     .build()
///     .unwrap();
/// assert_eq!(p.name, "toy");
/// assert!((p.load_frac - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Benchmark name (e.g. `"mcf"`).
    pub name: &'static str,
    /// Fraction of micro-ops that are loads.
    pub load_frac: f64,
    /// Fraction that are stores.
    pub store_frac: f64,
    /// Fraction that are conditional branches.
    pub branch_frac: f64,
    /// Of the remaining compute ops, the fraction executed on FP units.
    pub fp_frac: f64,
    /// Of compute ops, the fraction going to the (single) multiply units.
    pub mul_frac: f64,
    /// Mean producer–consumer distance in micro-ops (ILP knob).
    pub dep_mean: f64,
    /// Probability an op has a second source dependency.
    pub dep2_prob: f64,
    /// Fraction of *loads* redirected to the chip-wide read-shared
    /// region (parallel-workload mode; the paper's future work, §6).
    /// Zero — the default — reproduces the paper's multiprogrammed
    /// setting with fully disjoint address spaces.
    pub shared_read_frac: f64,
    /// Size of the read-shared region in KiB (meaningful only when
    /// `shared_read_frac > 0`).
    pub shared_kb: u64,
    /// Fraction of hot-region accesses that follow a cyclic sequential
    /// loop over the region (the rest use the recency draw). Looping is
    /// what gives real applications like `ammp`/`art` their cliff-shaped
    /// capacity curves: under LRU a loop gets no hits at all until the
    /// cache holds the whole loop.
    pub hot_loop: f64,
    /// Recency skew of hot-region accesses: reuse distance is drawn as
    /// `K * u^hot_skew` over the region's `K` blocks. `1.0` is uniform
    /// (flat stack-distance profile); larger values concentrate reuse on
    /// recently-touched blocks, producing the convex miss-vs-ways curves
    /// of the paper's Figure 3.
    pub hot_skew: f64,
    /// Long-run accuracy an ideal per-branch predictor could reach —
    /// each static branch follows its bias with this probability.
    pub branch_predictability: f64,
    /// Number of distinct static branches.
    pub branch_pool: usize,
    /// The memory mix.
    pub mix: MemoryMix,
    /// The region sizes.
    pub regions: RegionLayout,
}

impl AppProfile {
    /// Fraction of micro-ops that reference data memory.
    pub fn mem_frac(&self) -> f64 {
        self.load_frac + self.store_frac
    }

    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range fractions or empty
    /// regions.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(ConfigError::new("profile name must be nonempty"));
        }
        let total = self.load_frac + self.store_frac + self.branch_frac;
        if !(0.0..1.0).contains(&total) {
            return Err(ConfigError::new(
                "load + store + branch fractions must leave room for compute ops",
            ));
        }
        for (what, v) in [
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("fp_frac", self.fp_frac),
            ("mul_frac", self.mul_frac),
            ("dep2_prob", self.dep2_prob),
            ("branch_predictability", self.branch_predictability),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ConfigError::new(format!("{what} must be in [0, 1]")));
            }
        }
        if self.dep_mean < 1.0 {
            return Err(ConfigError::new("dep_mean must be at least 1"));
        }
        if !(0.0..=1.0).contains(&self.shared_read_frac) {
            return Err(ConfigError::new("shared_read_frac must be in [0, 1]"));
        }
        if self.shared_read_frac > 0.0 && self.shared_kb == 0 {
            return Err(ConfigError::new("shared region must be nonzero when used"));
        }
        if !(0.0..=1.0).contains(&self.hot_loop) {
            return Err(ConfigError::new("hot_loop must be in [0, 1]"));
        }
        if self.hot_skew < 1.0 {
            return Err(ConfigError::new(
                "hot_skew must be at least 1 (1 = uniform)",
            ));
        }
        if self.branch_pool == 0 {
            return Err(ConfigError::new("branch pool must be nonempty"));
        }
        self.mix.validate()?;
        self.regions.validate()
    }
}

/// Builder for [`AppProfile`] (C-BUILDER). Starts from a balanced
/// integer-code archetype and lets each knob be overridden.
#[derive(Debug, Clone)]
pub struct AppProfileBuilder {
    profile: AppProfile,
}

impl AppProfileBuilder {
    /// Starts a profile named `name` with moderate defaults.
    pub fn new(name: &'static str) -> Self {
        AppProfileBuilder {
            profile: AppProfile {
                name,
                load_frac: 0.24,
                store_frac: 0.10,
                branch_frac: 0.15,
                fp_frac: 0.0,
                mul_frac: 0.02,
                dep_mean: 3.0,
                dep2_prob: 0.4,
                shared_read_frac: 0.0,
                shared_kb: 1024,
                hot_loop: 0.0,
                hot_skew: 2.0,
                branch_predictability: 0.94,
                branch_pool: 256,
                mix: MemoryMix {
                    l1_resident: 0.70,
                    l2_resident: 0.20,
                    l3_hot: 0.08,
                    streaming: 0.02,
                },
                regions: RegionLayout {
                    l1_kb: 24,
                    l2_kb: 160,
                    hot_kb: 768,
                    stream_kb: 16 * 1024,
                    code_kb: 32,
                },
            },
        }
    }

    /// Sets the load fraction.
    pub fn loads(mut self, f: f64) -> Self {
        self.profile.load_frac = f;
        self
    }

    /// Sets the store fraction.
    pub fn stores(mut self, f: f64) -> Self {
        self.profile.store_frac = f;
        self
    }

    /// Sets the branch fraction.
    pub fn branches(mut self, f: f64) -> Self {
        self.profile.branch_frac = f;
        self
    }

    /// Sets the floating-point fraction of compute ops.
    pub fn fp(mut self, f: f64) -> Self {
        self.profile.fp_frac = f;
        self
    }

    /// Sets the multiply fraction of compute ops.
    pub fn mul_fraction(mut self, f: f64) -> Self {
        self.profile.mul_frac = f;
        self
    }

    /// Sets the mean dependency distance (larger = more ILP).
    pub fn dep_mean(mut self, d: f64) -> Self {
        self.profile.dep_mean = d;
        self
    }

    /// Sets the probability of a second source operand.
    pub fn dep2(mut self, p: f64) -> Self {
        self.profile.dep2_prob = p;
        self
    }

    /// Sets the hot-region recency skew (1.0 = uniform).
    pub fn hot_skew(mut self, beta: f64) -> Self {
        self.profile.hot_skew = beta;
        self
    }

    /// Sets the looping fraction of hot-region accesses.
    pub fn hot_loop(mut self, f: f64) -> Self {
        self.profile.hot_loop = f;
        self
    }

    /// Directs `f` of this application's loads at the chip-wide
    /// read-shared region (parallel-workload mode).
    pub fn shared_reads(mut self, f: f64, shared_kb: u64) -> Self {
        self.profile.shared_read_frac = f;
        self.profile.shared_kb = shared_kb;
        self
    }

    /// Sets branch predictability (ideal per-branch accuracy).
    pub fn predictability(mut self, p: f64) -> Self {
        self.profile.branch_predictability = p;
        self
    }

    /// Sets the number of static branches.
    pub fn branch_pool(mut self, n: usize) -> Self {
        self.profile.branch_pool = n;
        self
    }

    /// Sets the memory mix.
    pub fn mix(mut self, mix: MemoryMix) -> Self {
        self.profile.mix = mix;
        self
    }

    /// Sets the L1-resident region size in KiB.
    pub fn l1_kb(mut self, kb: u64) -> Self {
        self.profile.regions.l1_kb = kb;
        self
    }

    /// Sets the L2-resident region size in KiB.
    pub fn l2_kb(mut self, kb: u64) -> Self {
        self.profile.regions.l2_kb = kb;
        self
    }

    /// Sets the L3 hot region size in KiB.
    pub fn hot_kb(mut self, kb: u64) -> Self {
        self.profile.regions.hot_kb = kb;
        self
    }

    /// Sets the streaming region size in KiB.
    pub fn stream_kb(mut self, kb: u64) -> Self {
        self.profile.regions.stream_kb = kb;
        self
    }

    /// Sets the code footprint in KiB.
    pub fn code_kb(mut self, kb: u64) -> Self {
        self.profile.regions.code_kb = kb;
        self
    }

    /// Validates and returns the profile.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any knob is out of range.
    pub fn build(self) -> Result<AppProfile> {
        self.profile.validate()?;
        Ok(self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let p = AppProfileBuilder::new("x").build().unwrap();
        assert!(p.mem_frac() > 0.0);
        p.validate().unwrap();
    }

    #[test]
    fn mix_must_sum_to_one() {
        let bad = MemoryMix {
            l1_resident: 0.5,
            l2_resident: 0.5,
            l3_hot: 0.5,
            streaming: 0.0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn hot_blocks_per_set_formula() {
        let r = RegionLayout {
            l1_kb: 16,
            l2_kb: 128,
            hot_kb: 1024, // 1 MiB over 4096 sets x 64 B = 4 blocks/set
            stream_kb: 1024,
            code_kb: 16,
        };
        assert!((r.hot_blocks_per_set(4096, 64) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn profile_rejects_silly_fractions() {
        assert!(AppProfileBuilder::new("x")
            .loads(0.9)
            .stores(0.3)
            .build()
            .is_err());
        assert!(AppProfileBuilder::new("x")
            .predictability(1.5)
            .build()
            .is_err());
        assert!(AppProfileBuilder::new("x").dep_mean(0.0).build().is_err());
        assert!(AppProfileBuilder::new("").build().is_err());
    }

    #[test]
    fn regions_must_be_nonzero() {
        assert!(AppProfileBuilder::new("x").hot_kb(0).build().is_err());
    }
}
