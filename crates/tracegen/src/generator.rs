//! The dynamic micro-op stream generator.
//!
//! A [`TraceGenerator`] turns an [`AppProfile`] into an endless,
//! deterministic instruction stream. The stream exercises every substrate
//! the real workloads would: program counters walk a code region (driving
//! the L1I cache and BTB), branches are drawn from a static pool with
//! per-branch biases (so the real combined predictor has something to
//! learn), data addresses follow the profile's hierarchical locality
//! model, and dependency distances bound the instruction-level
//! parallelism the out-of-order core can extract.

use simcore::rng::SimRng;
use simcore::types::Address;

use crate::op::{MicroOp, OpClass};
use crate::profile::AppProfile;

/// Base virtual address of the code region.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Base of the L1-resident data region.
pub const L1_BASE: u64 = 0x1000_0000;
/// Base of the L2-resident data region.
pub const L2_BASE: u64 = 0x2000_0000;
/// Base of the L3 hot data region.
pub const HOT_BASE: u64 = 0x3000_0000;
/// Base of the streaming data region.
pub const STREAM_BASE: u64 = 0x4000_0000;
/// Base of the chip-wide *read-shared* region (parallel-workload mode).
/// Addresses here are not tagged with a per-core ASID, so all cores
/// reference the same blocks.
pub const SHARED_BASE: u64 = 0x7000_0000;

/// Whether an address falls in the read-shared region.
#[inline]
pub const fn is_shared_address(addr: Address) -> bool {
    // Compare untagged bits: the region test must hold before and after
    // ASID tagging.
    (addr.raw() & 0x00ff_ffff_ffff_ffff) >= SHARED_BASE
}

/// `x % k` for `x < 2k`: one compare instead of a 64-bit division.
/// Callers uphold the bound; hot cursors advance by at most one stride
/// past their span per op, so this covers every wrap in the generator.
#[inline]
fn wrap_once(x: u64, k: u64) -> u64 {
    debug_assert!(x < 2 * k, "wrap_once bound violated: {x} >= 2 * {k}");
    if x >= k {
        x - k
    } else {
        x
    }
}

/// `(x + 1) % k` for `x < k`.
#[inline]
fn wrap_inc(x: u64, k: u64) -> u64 {
    wrap_once(x + 1, k)
}

/// A deterministic generator of [`MicroOp`]s for one application.
///
/// # Example
///
/// ```
/// use tracegen::generator::TraceGenerator;
/// use tracegen::profile::AppProfileBuilder;
/// use simcore::rng::SimRng;
///
/// let profile = AppProfileBuilder::new("toy").build().unwrap();
/// let mut gen = TraceGenerator::new(&profile, SimRng::seed_from(7));
/// let ops: Vec<_> = (0..100).map(|_| gen.next_op()).collect();
/// assert_eq!(ops.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: AppProfile,
    rng: SimRng,
    /// Current byte offset within the code region.
    pc_offset: u64,
    /// Current byte offset within the streaming region.
    stream_offset: u64,
    /// Recency head of the hot region (block index); advances per hot
    /// access so "recent" blocks form a sliding window.
    hot_head: u64,
    /// Cursor of the cyclic sequential loop over the hot region.
    hot_loop_pos: u64,
    /// Recency head of the read-shared region (parallel mode).
    shared_head: u64,
    /// Taken-probability of each static branch.
    branch_bias: Vec<f64>,
    ops_generated: u64,
    // Precomputed thresholds over the unit interval for class selection.
    t_load: f64,
    t_store: f64,
    t_branch: f64,
    // Cumulative memory-region thresholds.
    m_l1: f64,
    m_l2: f64,
    m_hot: f64,
    dep_p: f64,
    /// `ln(1 - dep_p)`, hoisted so each dependency draw costs one
    /// logarithm instead of two (see [`SimRng::geometric_from_ln`]).
    dep_ln: f64,
    // Cached region extents (bytes / blocks), so the per-op path reads
    // flat fields instead of chasing the nested profile structs.
    code_bytes: u64,
    l1_span: u64,
    l2_span: u64,
    hot_blocks: u64,
    stream_span: u64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` with its own random stream.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation (construct profiles through
    /// the builder to avoid this).
    #[allow(clippy::expect_used)] // documented panic: constructor precondition
    pub fn new(profile: &AppProfile, mut rng: SimRng) -> Self {
        profile
            .validate()
            .expect("generator requires a valid profile");
        // Each static branch follows one dominant direction with
        // probability `branch_predictability`; alternate dominant
        // directions so the overall taken rate is near 50 %.
        let branch_bias = (0..profile.branch_pool)
            .map(|i| {
                let p = profile.branch_predictability;
                if i % 2 == 0 {
                    p
                } else {
                    1.0 - p
                }
            })
            .collect();
        let t_load = profile.load_frac;
        let t_store = t_load + profile.store_frac;
        let t_branch = t_store + profile.branch_frac;
        let m_l1 = profile.mix.l1_resident;
        let m_l2 = m_l1 + profile.mix.l2_resident;
        let m_hot = m_l2 + profile.mix.l3_hot;
        let stream_offset = rng.below(profile.regions.stream_kb * 1024) & !63;
        let hot_head = rng.below(profile.regions.hot_kb * 16); // blocks
        TraceGenerator {
            profile: profile.clone(),
            rng,
            pc_offset: 0,
            stream_offset,
            hot_head,
            hot_loop_pos: 0,
            shared_head: 0,
            branch_bias,
            ops_generated: 0,
            t_load,
            t_store,
            t_branch,
            m_l1,
            m_l2,
            m_hot,
            dep_p: 1.0 / profile.dep_mean,
            dep_ln: (1.0 - 1.0 / profile.dep_mean).ln(),
            code_bytes: profile.regions.code_kb * 1024,
            l1_span: profile.regions.l1_kb * 1024,
            l2_span: profile.regions.l2_kb * 1024,
            hot_blocks: profile.regions.hot_kb * 16,
            stream_span: profile.regions.stream_kb * 1024,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Number of micro-ops generated so far.
    pub fn ops_generated(&self) -> u64 {
        self.ops_generated
    }

    /// Emulates the paper's random fast-forward (0.5–1.5 billion
    /// instructions) without generating the skipped ops: the streaming
    /// cursor advances as it statistically would and the random stream is
    /// re-seeded deterministically from `instructions`.
    pub fn fast_forward(&mut self, instructions: u64) {
        let stream_bytes = self.profile.regions.stream_kb * 1024;
        let expected_stream_refs =
            (instructions as f64 * self.profile.mem_frac() * self.profile.mix.streaming) as u64;
        self.stream_offset = (self.stream_offset + expected_stream_refs * 64) % stream_bytes;
        self.rng = self.rng.fork(instructions);
    }

    /// Writes the mutable generator state (random stream and region
    /// cursors) to a snapshot. Profile-derived fields (thresholds,
    /// spans, branch biases) are reconstructed from the profile and are
    /// not encoded.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.rng.save_state(w);
        w.put_u64(self.pc_offset);
        w.put_u64(self.stream_offset);
        w.put_u64(self.hot_head);
        w.put_u64(self.hot_loop_pos);
        w.put_u64(self.shared_head);
        w.put_u64(self.ops_generated);
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// generator built from the same profile.
    ///
    /// # Errors
    ///
    /// Decode errors from the reader.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        self.rng.load_state(r)?;
        self.pc_offset = r.get_u64()?;
        self.stream_offset = r.get_u64()?;
        self.hot_head = r.get_u64()?;
        self.hot_loop_pos = r.get_u64()?;
        self.shared_head = r.get_u64()?;
        self.ops_generated = r.get_u64()?;
        Ok(())
    }

    #[inline]
    fn data_address(&mut self) -> Address {
        let r = self.rng.next_f64();
        let raw = if r < self.m_l1 {
            L1_BASE + (self.rng.below(self.l1_span) & !7)
        } else if r < self.m_l2 {
            L2_BASE + (self.rng.below(self.l2_span) & !7)
        } else if r < self.m_hot {
            let k = self.hot_blocks; // 64-byte blocks
            let blk = if self.rng.chance(self.profile.hot_loop) {
                // Cyclic sequential loop: the access pattern that gives
                // LRU caches an all-or-nothing capacity cliff at K.
                // Cursors stay in [0, k), so wrap-around is a compare
                // instead of a 64-bit division (this path runs once per
                // hot access; the modulo was visible in profiles).
                self.hot_loop_pos = wrap_inc(self.hot_loop_pos, k);
                self.hot_loop_pos
            } else {
                // Recency draw: distance from the head drawn as
                // K * u^hot_skew, a convex stack-distance profile
                // (Figure 3 shapes) that still touches all K blocks.
                self.hot_head = wrap_inc(self.hot_head, k);
                let u = self.rng.next_f64();
                // `k * u^skew < k` mathematically, but the product can
                // round up to exactly `k`; the wrap keeps the cast in
                // range exactly like the old `% k` did.
                let d = wrap_once((k as f64 * u.powf(self.profile.hot_skew)) as u64, k);
                wrap_once(self.hot_head + k - d, k)
            };
            HOT_BASE + blk * 64 + (self.rng.below(8) * 8)
        } else {
            self.stream_offset = wrap_once(self.stream_offset + 64, self.stream_span);
            STREAM_BASE + self.stream_offset
        };
        Address::new(raw)
    }

    #[inline]
    fn dep_distance(&mut self) -> u32 {
        if self.dep_p >= 1.0 {
            // Matches geometric(): p = 1 yields 0 without an RNG draw.
            return 1;
        }
        1 + self.rng.geometric_from_ln(self.dep_ln).min(63) as u32
    }

    /// Generates the next micro-op in program order.
    pub fn next_op(&mut self) -> MicroOp {
        let code_bytes = self.code_bytes;
        let pc = Address::new(CODE_BASE + self.pc_offset);
        let r = self.rng.next_f64();

        let (class, addr, taken) = if r < self.t_load {
            let addr = if self.profile.shared_read_frac > 0.0
                && self.rng.chance(self.profile.shared_read_frac)
            {
                // Read-only sharing: a recency draw over the common
                // region, so all threads touch the same hot blocks.
                let k = self.profile.shared_kb * 16;
                let u = self.rng.next_f64();
                let d = wrap_once((k as f64 * u.powf(self.profile.hot_skew)) as u64, k);
                let blk = wrap_once(self.shared_head + k - d, k);
                self.shared_head = wrap_inc(self.shared_head, k);
                Address::new(SHARED_BASE + blk * 64 + self.rng.below(8) * 8)
            } else {
                self.data_address()
            };
            (OpClass::Load, Some(addr), false)
        } else if r < self.t_store {
            (OpClass::Store, Some(self.data_address()), false)
        } else if r < self.t_branch {
            // Identify the static branch by its PC so the predictor can
            // learn it; the pool size bounds the number of distinct PCs.
            let idx = (self.pc_offset / 4) as usize % self.branch_bias.len();
            let taken = self.rng.chance(self.branch_bias[idx]);
            (OpClass::Branch, None, taken)
        } else {
            let compute = self.rng.next_f64();
            let class = if compute < self.profile.mul_frac {
                if self.rng.chance(self.profile.fp_frac) {
                    OpClass::FpMul
                } else {
                    OpClass::IntMul
                }
            } else if self.rng.chance(self.profile.fp_frac) {
                OpClass::FpAlu
            } else {
                OpClass::IntAlu
            };
            (class, None, false)
        };

        let dep1 = self.dep_distance();
        let dep2 = if self.rng.chance(self.profile.dep2_prob) {
            self.dep_distance()
        } else {
            0
        };

        // Advance the PC: sequential, except taken branches jump to a
        // random instruction-aligned target in the code region.
        if class == OpClass::Branch && taken {
            self.pc_offset = self.rng.below(code_bytes) & !3;
        } else {
            // The PC stays 4-aligned below `code_bytes` (a multiple of
            // 1024), so sequential advance wraps by compare, not modulo.
            self.pc_offset = wrap_once(self.pc_offset + 4, code_bytes);
        }

        self.ops_generated += 1;
        MicroOp {
            pc,
            class,
            addr,
            taken,
            dep1,
            dep2,
            latency: class.base_latency(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AppProfileBuilder;

    fn generator(seed: u64) -> TraceGenerator {
        let p = AppProfileBuilder::new("t").build().unwrap();
        TraceGenerator::new(&p, SimRng::seed_from(seed))
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = generator(3);
        let mut b = generator(3);
        for _ in 0..500 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn stream_resumes_identically_from_a_mid_stream_snapshot() {
        // The time-sampling engine hands the same generator back and
        // forth between the detailed pipeline and the functional retire
        // path, and campaign forking restores it mid-stream: the op
        // sequence must depend only on (seed, ops_generated), never on
        // how the pulls were chunked or where a snapshot was taken.
        let mut reference = generator(11);
        let reference_ops: Vec<MicroOp> = (0..4_000).map(|_| reference.next_op()).collect();

        // Uneven pull chunks (1, 2, 3, ... ops at a time).
        let mut chunked = generator(11);
        let mut pulled = Vec::new();
        let mut chunk = 1;
        while pulled.len() < 4_000 {
            for _ in 0..chunk.min(4_000 - pulled.len()) {
                pulled.push(chunked.next_op());
            }
            chunk += 1;
        }
        assert_eq!(pulled, reference_ops);

        // Snapshot mid-stream, restore into a fresh generator, resume.
        let mut original = generator(11);
        for _ in 0..1_500 {
            original.next_op();
        }
        let mut w = simcore::snapshot::SnapshotWriter::new();
        original.save_state(&mut w);
        let bytes = w.finish();
        let p = AppProfileBuilder::new("t").build().unwrap();
        let mut resumed = TraceGenerator::new(&p, SimRng::seed_from(999));
        let mut r = simcore::snapshot::SnapshotReader::open(&bytes).unwrap();
        resumed.load_state(&mut r).unwrap();
        assert_eq!(resumed.ops_generated(), 1_500);
        for op in reference_ops.iter().skip(1_500) {
            assert_eq!(&resumed.next_op(), op);
        }
    }

    #[test]
    fn mix_fractions_are_respected() {
        let mut g = generator(5);
        let n = 200_000;
        let mut loads = 0;
        let mut stores = 0;
        let mut branches = 0;
        for _ in 0..n {
            match g.next_op().class {
                OpClass::Load => loads += 1,
                OpClass::Store => stores += 1,
                OpClass::Branch => branches += 1,
                _ => {}
            }
        }
        let p = g.profile().clone();
        assert!((loads as f64 / n as f64 - p.load_frac).abs() < 0.01);
        assert!((stores as f64 / n as f64 - p.store_frac).abs() < 0.01);
        assert!((branches as f64 / n as f64 - p.branch_frac).abs() < 0.01);
    }

    #[test]
    fn memory_ops_carry_addresses_in_known_regions() {
        let mut g = generator(7);
        for _ in 0..20_000 {
            let op = g.next_op();
            if op.class.is_mem() {
                let a = op.addr.expect("mem ops carry addresses").raw();
                assert!(
                    (L1_BASE..L1_BASE + (1 << 26)).contains(&a)
                        || (L2_BASE..L2_BASE + (1 << 26)).contains(&a)
                        || (HOT_BASE..HOT_BASE + (1 << 28)).contains(&a)
                        || (STREAM_BASE..STREAM_BASE + (1 << 30)).contains(&a),
                    "address {a:#x} outside any region"
                );
            } else {
                assert!(op.addr.is_none());
            }
        }
    }

    #[test]
    fn stream_addresses_walk_sequentially() {
        let p = AppProfileBuilder::new("s")
            .mix(crate::profile::MemoryMix {
                l1_resident: 0.0,
                l2_resident: 0.0,
                l3_hot: 0.0,
                streaming: 1.0,
            })
            .build()
            .unwrap();
        let mut g = TraceGenerator::new(&p, SimRng::seed_from(1));
        let mut last: Option<u64> = None;
        let span = p.regions.stream_kb * 1024;
        for _ in 0..5_000 {
            let op = g.next_op();
            if let Some(a) = op.addr {
                let off = a.raw() - STREAM_BASE;
                if let Some(prev) = last {
                    assert_eq!(off, (prev + 64) % span);
                }
                last = Some(off);
            }
        }
    }

    #[test]
    fn pcs_stay_in_code_region_and_advance() {
        let mut g = generator(11);
        let code = g.profile().regions.code_kb * 1024;
        for _ in 0..10_000 {
            let op = g.next_op();
            let off = op.pc.raw() - CODE_BASE;
            assert!(off < code);
            assert_eq!(off % 4, 0);
        }
    }

    #[test]
    fn branch_outcomes_match_pool_bias_on_average() {
        let p = AppProfileBuilder::new("b")
            .branches(0.5)
            .loads(0.1)
            .stores(0.05)
            .predictability(0.9)
            .build()
            .unwrap();
        let mut g = TraceGenerator::new(&p, SimRng::seed_from(13));
        let mut taken = 0u64;
        let mut total = 0u64;
        for _ in 0..100_000 {
            let op = g.next_op();
            if op.class == OpClass::Branch {
                total += 1;
                taken += op.taken as u64;
            }
        }
        let rate = taken as f64 / total as f64;
        assert!(
            (0.3..0.7).contains(&rate),
            "taken rate {rate} should be near 0.5"
        );
    }

    #[test]
    fn dependencies_are_positive_and_bounded() {
        let mut g = generator(17);
        for _ in 0..10_000 {
            let op = g.next_op();
            assert!(op.dep1 >= 1 && op.dep1 <= 64);
            assert!(op.dep2 <= 64);
        }
    }

    #[test]
    fn fast_forward_changes_stream_deterministically() {
        let mut a = generator(19);
        let mut b = generator(19);
        a.fast_forward(1_000_000);
        b.fast_forward(1_000_000);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = generator(19);
        c.fast_forward(2_000_000);
        let same = (0..100).filter(|_| a.next_op() == c.next_op()).count();
        assert!(same < 100, "different forwards must diverge");
    }
}
