//! The dynamic micro-op stream generator.
//!
//! A [`TraceGenerator`] turns an [`AppProfile`] into an endless,
//! deterministic instruction stream. The stream exercises every substrate
//! the real workloads would: program counters walk a code region (driving
//! the L1I cache and BTB), branches are drawn from a static pool with
//! per-branch biases (so the real combined predictor has something to
//! learn), data addresses follow the profile's hierarchical locality
//! model, and dependency distances bound the instruction-level
//! parallelism the out-of-order core can extract.

use simcore::rng::SimRng;
use simcore::types::Address;

use crate::op::{MicroOp, OpClass};
use crate::profile::AppProfile;

/// Base virtual address of the code region.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Base of the L1-resident data region.
pub const L1_BASE: u64 = 0x1000_0000;
/// Base of the L2-resident data region.
pub const L2_BASE: u64 = 0x2000_0000;
/// Base of the L3 hot data region.
pub const HOT_BASE: u64 = 0x3000_0000;
/// Base of the streaming data region.
pub const STREAM_BASE: u64 = 0x4000_0000;
/// Base of the chip-wide *read-shared* region (parallel-workload mode).
/// Addresses here are not tagged with a per-core ASID, so all cores
/// reference the same blocks.
pub const SHARED_BASE: u64 = 0x7000_0000;

/// Whether an address falls in the read-shared region.
#[inline]
pub const fn is_shared_address(addr: Address) -> bool {
    // Compare untagged bits: the region test must hold before and after
    // ASID tagging.
    (addr.raw() & 0x00ff_ffff_ffff_ffff) >= SHARED_BASE
}

/// `x % k` for `x < 2k`: one compare instead of a 64-bit division.
/// Callers uphold the bound; hot cursors advance by at most one stride
/// past their span per op, so this covers every wrap in the generator.
#[inline]
fn wrap_once(x: u64, k: u64) -> u64 {
    debug_assert!(x < 2 * k, "wrap_once bound violated: {x} >= 2 * {k}");
    if x >= k {
        x - k
    } else {
        x
    }
}

/// `(x + 1) % k` for `x < k`.
#[inline]
fn wrap_inc(x: u64, k: u64) -> u64 {
    wrap_once(x + 1, k)
}

/// Ops per decode slab (see [`TraceGenerator::set_slab`]).
pub const SLAB_OPS: usize = 64;

/// One pre-decoded micro-op in a slab: [`MicroOp`] flattened to plain
/// words so the slab is a fixed-size, pointer-free array the consumer
/// loop walks linearly. The conversion is exact — addresses are bounded
/// well below the `u64::MAX` "no address" sentinel and dependency
/// distances fit a byte — so `MicroOp -> DecodedOp -> MicroOp`
/// round-trips bit-identically.
#[derive(Debug, Clone, Copy)]
struct DecodedOp {
    pc: u64,
    /// Data address, `u64::MAX` when the op carries none.
    addr: u64,
    class: OpClass,
    taken: bool,
    dep1: u8,
    dep2: u8,
}

impl DecodedOp {
    const EMPTY: DecodedOp = DecodedOp {
        pc: 0,
        addr: u64::MAX,
        class: OpClass::IntAlu,
        taken: false,
        dep1: 0,
        dep2: 0,
    };

    #[inline]
    fn pack(op: &MicroOp) -> DecodedOp {
        DecodedOp {
            pc: op.pc.raw(),
            addr: op.addr.map_or(u64::MAX, Address::raw),
            class: op.class,
            taken: op.taken,
            dep1: op.dep1 as u8,
            dep2: op.dep2 as u8,
        }
    }

    #[inline]
    fn unpack(&self) -> MicroOp {
        MicroOp {
            pc: Address::new(self.pc),
            class: self.class,
            addr: if self.addr == u64::MAX {
                None
            } else {
                Some(Address::new(self.addr))
            },
            taken: self.taken,
            dep1: u32::from(self.dep1),
            dep2: u32::from(self.dep2),
            latency: self.class.base_latency(),
        }
    }
}

/// The mutable cursor state of a generator at a slab boundary: enough to
/// re-derive any logical mid-slab position by replaying decoded ops.
#[derive(Debug, Clone)]
struct SlabBase {
    rng: SimRng,
    pc_offset: u64,
    stream_offset: u64,
    hot_head: u64,
    hot_loop_pos: u64,
    shared_head: u64,
    ops_generated: u64,
}

/// A deterministic generator of [`MicroOp`]s for one application.
///
/// # Example
///
/// ```
/// use tracegen::generator::TraceGenerator;
/// use tracegen::profile::AppProfileBuilder;
/// use simcore::rng::SimRng;
///
/// let profile = AppProfileBuilder::new("toy").build().unwrap();
/// let mut gen = TraceGenerator::new(&profile, SimRng::seed_from(7));
/// let ops: Vec<_> = (0..100).map(|_| gen.next_op()).collect();
/// assert_eq!(ops.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: AppProfile,
    rng: SimRng,
    /// Current byte offset within the code region.
    pc_offset: u64,
    /// Current byte offset within the streaming region.
    stream_offset: u64,
    /// Recency head of the hot region (block index); advances per hot
    /// access so "recent" blocks form a sliding window.
    hot_head: u64,
    /// Cursor of the cyclic sequential loop over the hot region.
    hot_loop_pos: u64,
    /// Recency head of the read-shared region (parallel mode).
    shared_head: u64,
    /// Taken-probability of each static branch.
    branch_bias: Vec<f64>,
    ops_generated: u64,
    /// Block-decode slab: [`SLAB_OPS`] pre-generated ops the consumer
    /// loop walks as a flat array (see [`set_slab`](Self::set_slab)).
    slab: [DecodedOp; SLAB_OPS],
    /// Valid ops in `slab` (0 when empty or slab mode is off).
    slab_len: usize,
    /// Next unconsumed slab entry; `slab_pos == slab_len` means empty.
    slab_pos: usize,
    /// Whether [`next_op`](Self::next_op) decodes in slabs.
    slab_on: bool,
    /// Whether decode runs in warm mode (see
    /// [`set_warm_decode`](Self::set_warm_decode)): dependency distances
    /// come out as placeholders while the RNG consumes the identical
    /// draw sequence, so the pc/class/addr/taken stream and the cursor
    /// are bit-identical to full decode.
    warm_decode: bool,
    /// Cursor state at the last slab refill, so snapshots and mode
    /// switches can collapse back to the logical (consumed) position.
    slab_base: SlabBase,
    // Precomputed thresholds over the unit interval for class selection.
    t_load: f64,
    t_store: f64,
    t_branch: f64,
    // Cumulative memory-region thresholds.
    m_l1: f64,
    m_l2: f64,
    m_hot: f64,
    dep_p: f64,
    /// `ln(1 - dep_p)`, hoisted so each dependency draw costs one
    /// logarithm instead of two (see [`SimRng::geometric_from_ln`]).
    dep_ln: f64,
    // Cached region extents (bytes / blocks), so the per-op path reads
    // flat fields instead of chasing the nested profile structs.
    code_bytes: u64,
    l1_span: u64,
    l2_span: u64,
    hot_blocks: u64,
    stream_span: u64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` with its own random stream.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation (construct profiles through
    /// the builder to avoid this).
    #[allow(clippy::expect_used)] // documented panic: constructor precondition
    pub fn new(profile: &AppProfile, mut rng: SimRng) -> Self {
        profile
            .validate()
            .expect("generator requires a valid profile");
        // Each static branch follows one dominant direction with
        // probability `branch_predictability`; alternate dominant
        // directions so the overall taken rate is near 50 %.
        let branch_bias = (0..profile.branch_pool)
            .map(|i| {
                let p = profile.branch_predictability;
                if i % 2 == 0 {
                    p
                } else {
                    1.0 - p
                }
            })
            .collect();
        let t_load = profile.load_frac;
        let t_store = t_load + profile.store_frac;
        let t_branch = t_store + profile.branch_frac;
        let m_l1 = profile.mix.l1_resident;
        let m_l2 = m_l1 + profile.mix.l2_resident;
        let m_hot = m_l2 + profile.mix.l3_hot;
        let stream_offset = rng.below(profile.regions.stream_kb * 1024) & !63;
        let hot_head = rng.below(profile.regions.hot_kb * 16); // blocks
        let slab_base = SlabBase {
            rng: rng.clone(), // lint:allow(L7): stack copy, no heap
            pc_offset: 0,
            stream_offset,
            hot_head,
            hot_loop_pos: 0,
            shared_head: 0,
            ops_generated: 0,
        };
        TraceGenerator {
            profile: profile.clone(), // lint:allow(L7): once per generator, construction only
            rng,
            pc_offset: 0,
            stream_offset,
            hot_head,
            hot_loop_pos: 0,
            shared_head: 0,
            branch_bias,
            ops_generated: 0,
            slab: [DecodedOp::EMPTY; SLAB_OPS],
            slab_len: 0,
            slab_pos: 0,
            slab_on: false,
            warm_decode: false,
            slab_base,
            t_load,
            t_store,
            t_branch,
            m_l1,
            m_l2,
            m_hot,
            dep_p: 1.0 / profile.dep_mean,
            dep_ln: (1.0 - 1.0 / profile.dep_mean).ln(),
            code_bytes: profile.regions.code_kb * 1024,
            l1_span: profile.regions.l1_kb * 1024,
            l2_span: profile.regions.l2_kb * 1024,
            hot_blocks: profile.regions.hot_kb * 16,
            stream_span: profile.regions.stream_kb * 1024,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Number of micro-ops generated so far. In slab mode, ops decoded
    /// ahead into the slab but not yet consumed do not count — the
    /// logical position is what the consumer has pulled.
    pub fn ops_generated(&self) -> u64 {
        self.ops_generated - (self.slab_len - self.slab_pos) as u64
    }

    /// Enables or disables block decoding: with slabs on,
    /// [`next_op`](Self::next_op) pre-generates [`SLAB_OPS`] ops at a
    /// time into a flat array and hands them out from there — the same
    /// stream, pinned by test, with the per-op RNG dispatch amortized
    /// over the slab. Disabling collapses any decoded-ahead ops back to
    /// the logical cursor, so the mode switch is invisible to the
    /// stream.
    pub fn set_slab(&mut self, enabled: bool) {
        if !enabled {
            self.collapse_slab();
        }
        self.slab_on = enabled;
    }

    /// Switches between full and warm decode. Warm decode is for
    /// functional consumers (warming, gap engine) that provably read
    /// only `pc`/`class`/`addr`/`taken`: the dependency-distance fields
    /// come out as placeholders (`dep1 = 1`, `dep2 = 0`) while the RNG
    /// consumes the *identical* draw sequence, skipping only the
    /// logarithm math — so the fields the consumer reads, the cursor,
    /// and every snapshot are bit-identical to full decode. Any
    /// decode-ahead is collapsed at a switch, so ops handed out after it
    /// are always decoded in the new mode. Cheap no-op when the mode
    /// already matches — callers may set it per op.
    #[inline]
    pub fn set_warm_decode(&mut self, enabled: bool) {
        if self.warm_decode != enabled {
            self.collapse_slab();
            self.warm_decode = enabled;
        }
    }

    /// Rewinds decode-ahead: re-derives the logical cursor (what the
    /// consumer has actually pulled) by replaying the consumed prefix of
    /// the current slab from its base, then empties the slab. No-op when
    /// nothing is decoded ahead. Cold path — runs at snapshots and mode
    /// switches, never per op.
    fn collapse_slab(&mut self) {
        if self.slab_pos < self.slab_len {
            let consumed = self.slab_pos;
            self.rng = self.slab_base.rng.clone(); // lint:allow(L7): stack copy, no heap
            self.pc_offset = self.slab_base.pc_offset;
            self.stream_offset = self.slab_base.stream_offset;
            self.hot_head = self.slab_base.hot_head;
            self.hot_loop_pos = self.slab_base.hot_loop_pos;
            self.shared_head = self.slab_base.shared_head;
            self.ops_generated = self.slab_base.ops_generated;
            for _ in 0..consumed {
                self.gen_op();
            }
        }
        self.slab_len = 0;
        self.slab_pos = 0;
    }

    /// Emulates the paper's random fast-forward (0.5–1.5 billion
    /// instructions) without generating the skipped ops: the streaming
    /// cursor advances as it statistically would and the random stream is
    /// re-seeded deterministically from `instructions`.
    pub fn fast_forward(&mut self, instructions: u64) {
        self.collapse_slab();
        let stream_bytes = self.profile.regions.stream_kb * 1024;
        let expected_stream_refs =
            (instructions as f64 * self.profile.mem_frac() * self.profile.mix.streaming) as u64;
        self.stream_offset = (self.stream_offset + expected_stream_refs * 64) % stream_bytes;
        self.rng = self.rng.fork(instructions);
    }

    /// Writes the mutable generator state (random stream and region
    /// cursors) to a snapshot. Profile-derived fields (thresholds,
    /// spans, branch biases) are reconstructed from the profile and are
    /// not encoded. The encoding is the *logical* cursor — decode-ahead
    /// is collapsed first — so snapshots are byte-identical whether or
    /// not slab mode is on, and restore into either mode.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        if self.slab_pos < self.slab_len {
            let mut logical = self.clone(); // lint:allow(L7): cold snapshot path
            logical.collapse_slab();
            logical.emit_cursor(w);
        } else {
            self.emit_cursor(w);
        }
    }

    fn emit_cursor(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.rng.save_state(w);
        w.put_u64(self.pc_offset);
        w.put_u64(self.stream_offset);
        w.put_u64(self.hot_head);
        w.put_u64(self.hot_loop_pos);
        w.put_u64(self.shared_head);
        w.put_u64(self.ops_generated);
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// generator built from the same profile.
    ///
    /// # Errors
    ///
    /// Decode errors from the reader.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        self.rng.load_state(r)?;
        self.pc_offset = r.get_u64()?;
        self.stream_offset = r.get_u64()?;
        self.hot_head = r.get_u64()?;
        self.hot_loop_pos = r.get_u64()?;
        self.shared_head = r.get_u64()?;
        self.ops_generated = r.get_u64()?;
        self.slab_len = 0;
        self.slab_pos = 0;
        Ok(())
    }

    #[inline]
    fn data_address(&mut self) -> Address {
        let r = self.rng.next_f64();
        let raw = if r < self.m_l1 {
            L1_BASE + (self.rng.below(self.l1_span) & !7)
        } else if r < self.m_l2 {
            L2_BASE + (self.rng.below(self.l2_span) & !7)
        } else if r < self.m_hot {
            let k = self.hot_blocks; // 64-byte blocks
            let blk = if self.rng.chance(self.profile.hot_loop) {
                // Cyclic sequential loop: the access pattern that gives
                // LRU caches an all-or-nothing capacity cliff at K.
                // Cursors stay in [0, k), so wrap-around is a compare
                // instead of a 64-bit division (this path runs once per
                // hot access; the modulo was visible in profiles).
                self.hot_loop_pos = wrap_inc(self.hot_loop_pos, k);
                self.hot_loop_pos
            } else {
                // Recency draw: distance from the head drawn as
                // K * u^hot_skew, a convex stack-distance profile
                // (Figure 3 shapes) that still touches all K blocks.
                self.hot_head = wrap_inc(self.hot_head, k);
                let u = self.rng.next_f64();
                // `k * u^skew < k` mathematically, but the product can
                // round up to exactly `k`; the wrap keeps the cast in
                // range exactly like the old `% k` did.
                let d = wrap_once((k as f64 * u.powf(self.profile.hot_skew)) as u64, k);
                wrap_once(self.hot_head + k - d, k)
            };
            HOT_BASE + blk * 64 + (self.rng.below(8) * 8)
        } else {
            self.stream_offset = wrap_once(self.stream_offset + 64, self.stream_span);
            STREAM_BASE + self.stream_offset
        };
        Address::new(raw)
    }

    #[inline]
    fn dep_distance(&mut self) -> u32 {
        if self.dep_p >= 1.0 {
            // Matches geometric(): p = 1 yields 0 without an RNG draw.
            return 1;
        }
        1 + self.rng.geometric_from_ln(self.dep_ln).min(63) as u32
    }

    /// Generates the next micro-op in program order. In slab mode the op
    /// comes out of the decode-ahead array, refilled [`SLAB_OPS`] at a
    /// time; the stream is bit-identical either way.
    #[inline]
    pub fn next_op(&mut self) -> MicroOp {
        if !self.slab_on {
            return self.gen_op();
        }
        if self.slab_pos == self.slab_len {
            self.refill_slab();
        }
        let op = self.slab[self.slab_pos].unpack();
        self.slab_pos += 1;
        op
    }

    /// Decodes the next [`SLAB_OPS`] ops into the slab, recording the
    /// cursor state at the refill point so snapshots can collapse back
    /// to any mid-slab position.
    fn refill_slab(&mut self) {
        self.slab_base = SlabBase {
            rng: self.rng.clone(), // lint:allow(L7): stack copy, no heap
            pc_offset: self.pc_offset,
            stream_offset: self.stream_offset,
            hot_head: self.hot_head,
            hot_loop_pos: self.hot_loop_pos,
            shared_head: self.shared_head,
            ops_generated: self.ops_generated,
        };
        for i in 0..SLAB_OPS {
            let op = self.gen_op();
            self.slab[i] = DecodedOp::pack(&op);
        }
        self.slab_len = SLAB_OPS;
        self.slab_pos = 0;
    }

    /// The per-op generation engine behind both modes.
    fn gen_op(&mut self) -> MicroOp {
        let code_bytes = self.code_bytes;
        let pc = Address::new(CODE_BASE + self.pc_offset);
        let r = self.rng.next_f64();

        let (class, addr, taken) = if r < self.t_load {
            let addr = if self.profile.shared_read_frac > 0.0
                && self.rng.chance(self.profile.shared_read_frac)
            {
                // Read-only sharing: a recency draw over the common
                // region, so all threads touch the same hot blocks.
                let k = self.profile.shared_kb * 16;
                let u = self.rng.next_f64();
                let d = wrap_once((k as f64 * u.powf(self.profile.hot_skew)) as u64, k);
                let blk = wrap_once(self.shared_head + k - d, k);
                self.shared_head = wrap_inc(self.shared_head, k);
                Address::new(SHARED_BASE + blk * 64 + self.rng.below(8) * 8)
            } else {
                self.data_address()
            };
            (OpClass::Load, Some(addr), false)
        } else if r < self.t_store {
            (OpClass::Store, Some(self.data_address()), false)
        } else if r < self.t_branch {
            // Identify the static branch by its PC so the predictor can
            // learn it; the pool size bounds the number of distinct PCs.
            let idx = (self.pc_offset / 4) as usize % self.branch_bias.len();
            let taken = self.rng.chance(self.branch_bias[idx]);
            (OpClass::Branch, None, taken)
        } else {
            let compute = self.rng.next_f64();
            let class = if compute < self.profile.mul_frac {
                if self.rng.chance(self.profile.fp_frac) {
                    OpClass::FpMul
                } else {
                    OpClass::IntMul
                }
            } else if self.rng.chance(self.profile.fp_frac) {
                OpClass::FpAlu
            } else {
                OpClass::IntAlu
            };
            (class, None, false)
        };

        let (dep1, dep2) = if self.warm_decode {
            // Warm decode: consume the same draws `dep_distance` would
            // ([`chance`](SimRng::chance) and `geometric_from_ln` each
            // cost exactly one `next_f64`) but skip the `ln` math — the
            // functional consumers never read these fields.
            if self.dep_p < 1.0 {
                let _ = self.rng.next_f64();
            }
            if self.rng.chance(self.profile.dep2_prob) && self.dep_p < 1.0 {
                let _ = self.rng.next_f64();
            }
            (1, 0)
        } else {
            let dep1 = self.dep_distance();
            let dep2 = if self.rng.chance(self.profile.dep2_prob) {
                self.dep_distance()
            } else {
                0
            };
            (dep1, dep2)
        };

        // Advance the PC: sequential, except taken branches jump to a
        // random instruction-aligned target in the code region.
        if class == OpClass::Branch && taken {
            self.pc_offset = self.rng.below(code_bytes) & !3;
        } else {
            // The PC stays 4-aligned below `code_bytes` (a multiple of
            // 1024), so sequential advance wraps by compare, not modulo.
            self.pc_offset = wrap_once(self.pc_offset + 4, code_bytes);
        }

        self.ops_generated += 1;
        MicroOp {
            pc,
            class,
            addr,
            taken,
            dep1,
            dep2,
            latency: class.base_latency(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AppProfileBuilder;

    fn generator(seed: u64) -> TraceGenerator {
        let p = AppProfileBuilder::new("t").build().unwrap();
        TraceGenerator::new(&p, SimRng::seed_from(seed))
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = generator(3);
        let mut b = generator(3);
        for _ in 0..500 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn stream_resumes_identically_from_a_mid_stream_snapshot() {
        // The time-sampling engine hands the same generator back and
        // forth between the detailed pipeline and the functional retire
        // path, and campaign forking restores it mid-stream: the op
        // sequence must depend only on (seed, ops_generated), never on
        // how the pulls were chunked or where a snapshot was taken.
        let mut reference = generator(11);
        let reference_ops: Vec<MicroOp> = (0..4_000).map(|_| reference.next_op()).collect();

        // Uneven pull chunks (1, 2, 3, ... ops at a time).
        let mut chunked = generator(11);
        let mut pulled = Vec::new();
        let mut chunk = 1;
        while pulled.len() < 4_000 {
            for _ in 0..chunk.min(4_000 - pulled.len()) {
                pulled.push(chunked.next_op());
            }
            chunk += 1;
        }
        assert_eq!(pulled, reference_ops);

        // Snapshot mid-stream, restore into a fresh generator, resume.
        let mut original = generator(11);
        for _ in 0..1_500 {
            original.next_op();
        }
        let mut w = simcore::snapshot::SnapshotWriter::new();
        original.save_state(&mut w);
        let bytes = w.finish();
        let p = AppProfileBuilder::new("t").build().unwrap();
        let mut resumed = TraceGenerator::new(&p, SimRng::seed_from(999));
        let mut r = simcore::snapshot::SnapshotReader::open(&bytes).unwrap();
        resumed.load_state(&mut r).unwrap();
        assert_eq!(resumed.ops_generated(), 1_500);
        for op in reference_ops.iter().skip(1_500) {
            assert_eq!(&resumed.next_op(), op);
        }
    }

    #[test]
    fn slab_decode_matches_one_at_a_time() {
        let mut direct = generator(23);
        let mut slabbed = generator(23);
        slabbed.set_slab(true);
        for i in 0..10_000 {
            assert_eq!(direct.next_op(), slabbed.next_op(), "op {i}");
            assert_eq!(direct.ops_generated(), slabbed.ops_generated());
        }
    }

    #[test]
    fn slab_mode_toggles_mid_stream_without_disturbing_the_stream() {
        let mut reference = generator(29);
        let reference_ops: Vec<MicroOp> = (0..3_000).map(|_| reference.next_op()).collect();
        let mut toggled = generator(29);
        // Flip modes at awkward (non-slab-aligned) points.
        let mut produced = Vec::new();
        for (i, chunk) in [37usize, 200, 64, 1, 513, 900, 128, 1157]
            .iter()
            .enumerate()
        {
            toggled.set_slab(i % 2 == 0);
            for _ in 0..*chunk {
                produced.push(toggled.next_op());
            }
        }
        assert_eq!(produced, reference_ops);
    }

    #[test]
    fn warm_decode_preserves_the_functional_stream_and_the_cursor() {
        // Warm decode must keep every field the functional consumers
        // read (pc/class/addr/taken) and the whole cursor bit-identical
        // to full decode — only dep1/dep2 become placeholders. Run both
        // modes in lockstep (slabbed, as the core uses them), then
        // switch the warm generator back to full mid-stream at an
        // unaligned point: from there the streams must agree on every
        // field, and snapshots must be byte-identical throughout.
        let snap = |g: &TraceGenerator| {
            let mut w = simcore::snapshot::SnapshotWriter::new();
            g.save_state(&mut w);
            w.finish()
        };
        let mut full = generator(37);
        full.set_slab(true);
        let mut warm = generator(37);
        warm.set_slab(true);
        warm.set_warm_decode(true);
        for i in 0..3_000 {
            let f = full.next_op();
            let w = warm.next_op();
            assert_eq!(
                (f.pc, f.class, f.addr, f.taken),
                (w.pc, w.class, w.addr, w.taken),
                "op {i}"
            );
            assert_eq!((w.dep1, w.dep2), (1, 0), "op {i} placeholder deps");
        }
        assert_eq!(snap(&full), snap(&warm), "cursor after warm stretch");
        warm.set_warm_decode(false);
        for i in 0..1_000 {
            assert_eq!(full.next_op(), warm.next_op(), "full-mode op {i}");
        }
        assert_eq!(snap(&full), snap(&warm), "cursor after switch back");
        // Toggling at unaligned points must not disturb the stream.
        let mut reference = generator(41);
        let mut toggled = generator(41);
        toggled.set_slab(true);
        for (i, chunk) in [53usize, 64, 1, 700, 129].iter().enumerate() {
            toggled.set_warm_decode(i % 2 == 0);
            for _ in 0..*chunk {
                let r = reference.next_op();
                let t = toggled.next_op();
                assert_eq!(
                    (r.pc, r.class, r.addr, r.taken),
                    (t.pc, t.class, t.addr, t.taken)
                );
            }
        }
        assert_eq!(snap(&reference), snap(&toggled));
    }

    #[test]
    fn slab_snapshots_collapse_to_the_logical_cursor() {
        // A snapshot taken mid-slab must be byte-identical to one taken
        // from a slab-free generator at the same logical position, and
        // must restore into either mode.
        let take = |slab: bool, ops: usize| {
            let mut g = generator(31);
            g.set_slab(slab);
            for _ in 0..ops {
                g.next_op();
            }
            let mut w = simcore::snapshot::SnapshotWriter::new();
            g.save_state(&mut w);
            w.finish()
        };
        for ops in [0usize, 1, 63, 64, 65, 1_000, 1_037] {
            assert_eq!(take(true, ops), take(false, ops), "after {ops} ops");
        }
        // Restore a mid-slab snapshot into a slabbed generator and
        // resume: the stream must continue exactly.
        let bytes = take(true, 1_037);
        let p = AppProfileBuilder::new("t").build().unwrap();
        let mut resumed = TraceGenerator::new(&p, SimRng::seed_from(999));
        resumed.set_slab(true);
        let mut r = simcore::snapshot::SnapshotReader::open(&bytes).unwrap();
        resumed.load_state(&mut r).unwrap();
        assert_eq!(resumed.ops_generated(), 1_037);
        let mut reference = generator(31);
        for _ in 0..1_037 {
            reference.next_op();
        }
        for i in 0..500 {
            assert_eq!(resumed.next_op(), reference.next_op(), "resume op {i}");
        }
    }

    #[test]
    fn mix_fractions_are_respected() {
        let mut g = generator(5);
        let n = 200_000;
        let mut loads = 0;
        let mut stores = 0;
        let mut branches = 0;
        for _ in 0..n {
            match g.next_op().class {
                OpClass::Load => loads += 1,
                OpClass::Store => stores += 1,
                OpClass::Branch => branches += 1,
                _ => {}
            }
        }
        let p = g.profile().clone();
        assert!((loads as f64 / n as f64 - p.load_frac).abs() < 0.01);
        assert!((stores as f64 / n as f64 - p.store_frac).abs() < 0.01);
        assert!((branches as f64 / n as f64 - p.branch_frac).abs() < 0.01);
    }

    #[test]
    fn memory_ops_carry_addresses_in_known_regions() {
        let mut g = generator(7);
        for _ in 0..20_000 {
            let op = g.next_op();
            if op.class.is_mem() {
                let a = op.addr.expect("mem ops carry addresses").raw();
                assert!(
                    (L1_BASE..L1_BASE + (1 << 26)).contains(&a)
                        || (L2_BASE..L2_BASE + (1 << 26)).contains(&a)
                        || (HOT_BASE..HOT_BASE + (1 << 28)).contains(&a)
                        || (STREAM_BASE..STREAM_BASE + (1 << 30)).contains(&a),
                    "address {a:#x} outside any region"
                );
            } else {
                assert!(op.addr.is_none());
            }
        }
    }

    #[test]
    fn stream_addresses_walk_sequentially() {
        let p = AppProfileBuilder::new("s")
            .mix(crate::profile::MemoryMix {
                l1_resident: 0.0,
                l2_resident: 0.0,
                l3_hot: 0.0,
                streaming: 1.0,
            })
            .build()
            .unwrap();
        let mut g = TraceGenerator::new(&p, SimRng::seed_from(1));
        let mut last: Option<u64> = None;
        let span = p.regions.stream_kb * 1024;
        for _ in 0..5_000 {
            let op = g.next_op();
            if let Some(a) = op.addr {
                let off = a.raw() - STREAM_BASE;
                if let Some(prev) = last {
                    assert_eq!(off, (prev + 64) % span);
                }
                last = Some(off);
            }
        }
    }

    #[test]
    fn pcs_stay_in_code_region_and_advance() {
        let mut g = generator(11);
        let code = g.profile().regions.code_kb * 1024;
        for _ in 0..10_000 {
            let op = g.next_op();
            let off = op.pc.raw() - CODE_BASE;
            assert!(off < code);
            assert_eq!(off % 4, 0);
        }
    }

    #[test]
    fn branch_outcomes_match_pool_bias_on_average() {
        let p = AppProfileBuilder::new("b")
            .branches(0.5)
            .loads(0.1)
            .stores(0.05)
            .predictability(0.9)
            .build()
            .unwrap();
        let mut g = TraceGenerator::new(&p, SimRng::seed_from(13));
        let mut taken = 0u64;
        let mut total = 0u64;
        for _ in 0..100_000 {
            let op = g.next_op();
            if op.class == OpClass::Branch {
                total += 1;
                taken += op.taken as u64;
            }
        }
        let rate = taken as f64 / total as f64;
        assert!(
            (0.3..0.7).contains(&rate),
            "taken rate {rate} should be near 0.5"
        );
    }

    #[test]
    fn dependencies_are_positive_and_bounded() {
        let mut g = generator(17);
        for _ in 0..10_000 {
            let op = g.next_op();
            assert!(op.dep1 >= 1 && op.dep1 <= 64);
            assert!(op.dep2 <= 64);
        }
    }

    #[test]
    fn fast_forward_changes_stream_deterministically() {
        let mut a = generator(19);
        let mut b = generator(19);
        a.fast_forward(1_000_000);
        b.fast_forward(1_000_000);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = generator(19);
        c.fast_forward(2_000_000);
        let same = (0..100).filter(|_| a.next_op() == c.next_op()).count();
        assert!(same < 100, "different forwards must diverge");
    }
}
