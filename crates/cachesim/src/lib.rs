//! Cache structures for the NUCA chip-multiprocessor simulator.
//!
//! This crate provides the building blocks every cache organization in the
//! workspace is assembled from:
//!
//! - [`lru`] — an explicit LRU stack over way indices, the primitive both
//!   the conventional levels and the paper's partitioned last-level cache
//!   are built on (the adaptive scheme inspects LRU *positions*, so the
//!   stack must be a first-class object rather than timestamps).
//! - [`cache`] — a generic set-associative, write-back/write-allocate cache
//!   used for L1I/L1D/L2 and the private and shared last-level
//!   organizations.
//! - [`mshr`] — miss status holding registers for the non-blocking
//!   hierarchy (secondary misses merge onto an outstanding fill).
//! - [`shadow`] — the paper's shadow-tag table (Figure 4b) with the
//!   low-index set sampling of Section 4.6.
//! - [`percore`] — a tiny fixed-size per-core table type used for the
//!   counters of Figure 4c and the partition parameters of Figure 4d.
//! - [`swar`] — packed one-byte tag digests and the SWAR wide-way probe
//!   used by [`cache`] and the adaptive organization to compare all ≤16
//!   ways of a set in chunked `u64` passes.
//!
//! # Example
//!
//! ```
//! use cachesim::cache::{Cache, Lookup};
//! use simcore::config::CacheGeometry;
//! use simcore::types::{Address, CoreId};
//!
//! let geom = CacheGeometry::new(64 * 1024, 2, 64, 3).unwrap();
//! let mut l1 = Cache::new(geom);
//! let a = Address::new(0x1000);
//! let c0 = CoreId::from_index(0);
//! assert_eq!(l1.access(a, false, c0), Lookup::Miss);
//! l1.fill(a, false, c0);
//! assert!(matches!(l1.access(a, false, c0), Lookup::Hit { .. }));
//! ```

pub mod cache;
pub mod lru;
pub mod mshr;
pub mod percore;
pub mod shadow;
pub mod swar;

pub use cache::{Cache, EvictedBlock, Lookup};
pub use lru::LruStack;
pub use mshr::MshrFile;
pub use percore::PerCore;
pub use shadow::{SetSampling, ShadowTags};
pub use swar::TagFilter;
