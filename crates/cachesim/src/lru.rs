//! An explicit least-recently-used stack over small way indices.
//!
//! The paper's mechanisms observe LRU *positions* directly: a hit in the
//! LRU block increments the "loss" counter (Section 2.1), and Algorithm 1
//! walks the shared partition's stack from the LRU end. [`LruStack`] keeps
//! the recency order as an explicit sequence (MRU first) so those
//! operations are natural and O(ways), which is tiny for the 2–16-way
//! caches of Table 1.

/// A recency ordering over way indices, most-recently-used first.
///
/// The stack does not have to contain every way of a set: the adaptive
/// last-level cache keeps one stack per private partition and one for the
/// shared partition, and ways migrate between them.
///
/// # Example
///
/// ```
/// use cachesim::lru::LruStack;
/// let mut s = LruStack::new();
/// s.push_mru(0);
/// s.push_mru(1);          // order: 1, 0
/// assert_eq!(s.lru(), Some(0));
/// s.touch(0);             // order: 0, 1
/// assert_eq!(s.lru(), Some(1));
/// assert_eq!(s.pop_lru(), Some(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LruStack {
    /// Way indices, index 0 = MRU, last = LRU.
    order: Vec<u8>,
}

impl LruStack {
    /// Creates an empty stack.
    pub const fn new() -> Self {
        // An empty Vec does not allocate; growth happens during warm-up.
        LruStack { order: Vec::new() } // lint:allow(L7): construction only
    }

    /// Creates a stack pre-populated with ways `0..ways`, way 0 as MRU.
    pub fn with_ways(ways: usize) -> Self {
        LruStack {
            order: (0..ways as u8).collect(),
        }
    }

    /// Number of ways currently tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the stack tracks no ways.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The most recently used way, if any.
    #[inline]
    pub fn mru(&self) -> Option<u8> {
        self.order.first().copied()
    }

    /// The least recently used way, if any.
    #[inline]
    pub fn lru(&self) -> Option<u8> {
        self.order.last().copied()
    }

    /// Whether `way` is currently in the stack.
    pub fn contains(&self, way: u8) -> bool {
        self.order.contains(&way)
    }

    /// The position of `way` from the MRU end (0 = MRU), if present.
    pub fn position(&self, way: u8) -> Option<usize> {
        self.order.iter().position(|&w| w == way)
    }

    /// Whether `way` currently sits in the LRU position.
    pub fn is_lru(&self, way: u8) -> bool {
        self.lru() == Some(way)
    }

    /// Moves `way` to the MRU position; inserts it if absent.
    pub fn touch(&mut self, way: u8) {
        if let Some(pos) = self.position(way) {
            self.order[..=pos].rotate_right(1);
        } else {
            self.order.insert(0, way);
        }
    }

    /// Inserts `way` at the MRU position.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `way` is already present (a set must never
    /// track the same way twice).
    pub fn push_mru(&mut self, way: u8) {
        debug_assert!(!self.contains(way), "way {way} already tracked");
        self.order.insert(0, way);
    }

    /// Inserts `way` at the LRU position (used when demoting a block).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `way` is already present.
    pub fn push_lru(&mut self, way: u8) {
        debug_assert!(!self.contains(way), "way {way} already tracked");
        self.order.push(way);
    }

    /// Removes and returns the LRU way.
    pub fn pop_lru(&mut self) -> Option<u8> {
        self.order.pop()
    }

    /// Removes `way` from the stack; returns whether it was present.
    pub fn remove(&mut self, way: u8) -> bool {
        if let Some(pos) = self.position(way) {
            self.order.remove(pos);
            true
        } else {
            false
        }
    }

    /// Iterates from the LRU end towards the MRU end — the walk order of
    /// Algorithm 1.
    pub fn iter_from_lru(&self) -> impl Iterator<Item = u8> + '_ {
        self.order.iter().rev().copied()
    }

    /// Iterates from the MRU end towards the LRU end.
    pub fn iter_from_mru(&self) -> impl Iterator<Item = u8> + '_ {
        self.order.iter().copied()
    }

    /// The way at position `pos` from the MRU end.
    #[inline]
    pub fn at(&self, pos: usize) -> u8 {
        self.order[pos]
    }
}

/// Maximum associativity representable by [`PackedLru`]: 16 ways at
/// 4 bits per way fill one `u64`. [`simcore::config::CacheGeometry`]
/// rejects larger associativities, so every set in the simulator fits.
pub const MAX_WAYS: usize = 16;

/// One copy of a way index in every nibble — multiplying a way by this
/// broadcasts it for the SWAR comparison in [`PackedLru::position`].
const NIBBLE_LO: u64 = 0x1111_1111_1111_1111;
/// The top bit of every nibble, where the zero-nibble detector below
/// leaves its per-nibble flag.
const NIBBLE_HI: u64 = 0x8888_8888_8888_8888;
/// Nibble `i` holds value `i`: the recency order of a freshly populated
/// set, way 0 as MRU.
const IDENTITY: u64 = 0xFEDC_BA98_7654_3210;

/// A recency ordering packed into a single `u64` permutation word.
///
/// Same contract as [`LruStack`] — a sequence of distinct way indices,
/// MRU first — but stored as one nibble per position: nibble 0 (the low
/// 4 bits) is the MRU way, nibble `len-1` the LRU way. Every operation
/// is a handful of shifts and masks instead of a `Vec` walk, and the
/// whole set's recency state travels in one register. Unused nibbles
/// (`len..16`) are kept zero so derived `Eq`/`Hash` see a canonical
/// form.
///
/// The reference [`LruStack`] stays as the behavioural oracle: a
/// property test drives both with the same operation sequence and
/// asserts identical observations.
///
/// # Example
///
/// ```
/// use cachesim::lru::PackedLru;
/// let mut s = PackedLru::new();
/// s.push_mru(0);
/// s.push_mru(1);          // order: 1, 0
/// assert_eq!(s.lru(), Some(0));
/// s.touch(0);             // order: 0, 1
/// assert_eq!(s.lru(), Some(1));
/// assert_eq!(s.pop_lru(), Some(1));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackedLru {
    /// Way indices, 4 bits each; nibble 0 = MRU, nibble `len-1` = LRU.
    bits: u64,
    /// Number of tracked ways (0..=16).
    len: u8,
}

impl PackedLru {
    /// Creates an empty stack.
    pub const fn new() -> Self {
        PackedLru { bits: 0, len: 0 }
    }

    /// Creates a stack pre-populated with ways `0..ways`, way 0 as MRU.
    ///
    /// # Panics
    ///
    /// Panics if `ways > MAX_WAYS`.
    pub fn with_ways(ways: usize) -> Self {
        assert!(ways <= MAX_WAYS, "PackedLru holds at most {MAX_WAYS} ways");
        PackedLru {
            bits: IDENTITY & Self::low_mask(ways),
            len: ways as u8,
        }
    }

    /// A mask covering the low `n` nibbles.
    #[inline]
    const fn low_mask(n: usize) -> u64 {
        if n >= 16 {
            u64::MAX
        } else {
            (1u64 << (4 * n)) - 1
        }
    }

    /// The way stored at position `pos` (0 = MRU).
    #[inline]
    fn nibble(&self, pos: usize) -> u8 {
        ((self.bits >> (4 * pos)) & 0xF) as u8
    }

    /// Number of ways currently tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the stack tracks no ways.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The most recently used way, if any.
    #[inline]
    pub fn mru(&self) -> Option<u8> {
        (self.len > 0).then(|| self.nibble(0))
    }

    /// The least recently used way, if any.
    #[inline]
    pub fn lru(&self) -> Option<u8> {
        (self.len > 0).then(|| self.nibble(self.len as usize - 1))
    }

    /// Whether `way` is currently in the stack.
    #[inline]
    pub fn contains(&self, way: u8) -> bool {
        self.position(way).is_some()
    }

    /// The position of `way` from the MRU end (0 = MRU), if present.
    ///
    /// Single SWAR comparison: XOR with the broadcast way zeroes the
    /// matching nibble, and the classic zero-nibble detector
    /// (`(x - LO) & !x & HI`) flags it. Borrow propagation can only
    /// produce false flags *above* the lowest true zero nibble, so
    /// `trailing_zeros` — the lowest flag — is always exact; ways are
    /// distinct anyway, so at most one true match exists.
    #[inline]
    pub fn position(&self, way: u8) -> Option<usize> {
        debug_assert!(way < 16, "way {way} out of nibble range");
        let x = self.bits ^ (u64::from(way) * NIBBLE_LO);
        let hits = x.wrapping_sub(NIBBLE_LO) & !x & NIBBLE_HI & Self::low_mask(self.len as usize);
        (hits != 0).then(|| (hits.trailing_zeros() / 4) as usize)
    }

    /// Whether `way` currently sits in the LRU position.
    #[inline]
    pub fn is_lru(&self, way: u8) -> bool {
        self.lru() == Some(way)
    }

    /// Moves `way` to the MRU position; inserts it if absent.
    pub fn touch(&mut self, way: u8) {
        match self.position(way) {
            Some(pos) => {
                // Rotate nibbles 0..=pos one slot up and drop `way`
                // back into nibble 0.
                let window = Self::low_mask(pos + 1);
                let rotated = ((self.bits << 4) | u64::from(way)) & window;
                self.bits = (self.bits & !window) | rotated;
            }
            None => self.push_mru(way),
        }
    }

    /// Inserts `way` at the MRU position.
    ///
    /// # Panics
    ///
    /// Panics if the stack is full; in debug builds also if `way` is
    /// already present (a set must never track the same way twice).
    pub fn push_mru(&mut self, way: u8) {
        assert!((self.len as usize) < MAX_WAYS, "PackedLru full");
        debug_assert!(!self.contains(way), "way {way} already tracked");
        self.bits = (self.bits << 4) | u64::from(way);
        self.len += 1;
    }

    /// Inserts `way` at the LRU position (used when demoting a block).
    ///
    /// # Panics
    ///
    /// Panics if the stack is full; in debug builds also if `way` is
    /// already present.
    pub fn push_lru(&mut self, way: u8) {
        assert!((self.len as usize) < MAX_WAYS, "PackedLru full");
        debug_assert!(!self.contains(way), "way {way} already tracked");
        self.bits |= u64::from(way) << (4 * self.len);
        self.len += 1;
    }

    /// Removes and returns the LRU way.
    pub fn pop_lru(&mut self) -> Option<u8> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let shift = 4 * self.len as usize;
        let way = ((self.bits >> shift) & 0xF) as u8;
        self.bits &= !(0xF << shift);
        Some(way)
    }

    /// Removes `way` from the stack; returns whether it was present.
    pub fn remove(&mut self, way: u8) -> bool {
        let Some(pos) = self.position(way) else {
            return false;
        };
        let low = self.bits & Self::low_mask(pos);
        // Nibbles above `pos` slide down one slot; a shift of 64 (the
        // pos == 15 case, where nothing sits above) is UB, so guard it.
        let high = if pos + 1 >= 16 {
            0
        } else {
            self.bits >> (4 * (pos + 1))
        };
        self.bits = low | (high << (4 * pos));
        self.len -= 1;
        true
    }

    /// Iterates from the LRU end towards the MRU end — the walk order of
    /// Algorithm 1.
    pub fn iter_from_lru(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len as usize).rev().map(|p| self.nibble(p))
    }

    /// Iterates from the MRU end towards the LRU end.
    pub fn iter_from_mru(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len as usize).map(|p| self.nibble(p))
    }

    /// The way at position `pos` from the MRU end.
    #[inline]
    pub fn at(&self, pos: usize) -> u8 {
        debug_assert!(pos < self.len as usize);
        self.nibble(pos)
    }
}

/// The recency state of one cache set, packed when it fits.
///
/// Way indices are stored as nibbles in [`PackedLru`], so the single-word
/// form covers every configuration up to 16 ways — all of Table 1. Wider
/// robustness configurations (the 8-core chip's 32-way shared L3) fall
/// back to the reference [`LruStack`]. The variant is fixed at
/// construction by the set's associativity, so the branch in every
/// delegated call is perfectly predicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recency {
    /// Associativity ≤ 16: single `u64` permutation word.
    Packed(PackedLru),
    /// Associativity > 16: reference `Vec<u8>` stack.
    Wide(LruStack),
}

macro_rules! delegate {
    ($self:ident, $s:ident => $body:expr) => {
        match $self {
            Recency::Packed($s) => $body,
            Recency::Wide($s) => $body,
        }
    };
}

impl Recency {
    /// Creates an empty recency word for a set of `total_ways` ways.
    pub fn for_ways(total_ways: usize) -> Self {
        if total_ways <= MAX_WAYS {
            Recency::Packed(PackedLru::new())
        } else {
            Recency::Wide(LruStack::new())
        }
    }

    /// Number of ways currently tracked.
    #[inline]
    pub fn len(&self) -> usize {
        delegate!(self, s => s.len())
    }

    /// Whether the stack tracks no ways.
    #[inline]
    pub fn is_empty(&self) -> bool {
        delegate!(self, s => s.is_empty())
    }

    /// The most recently used way, if any.
    #[inline]
    pub fn mru(&self) -> Option<u8> {
        delegate!(self, s => s.mru())
    }

    /// The least recently used way, if any.
    #[inline]
    pub fn lru(&self) -> Option<u8> {
        delegate!(self, s => s.lru())
    }

    /// Whether `way` is currently in the stack.
    #[inline]
    pub fn contains(&self, way: u8) -> bool {
        delegate!(self, s => s.contains(way))
    }

    /// The position of `way` from the MRU end (0 = MRU), if present.
    #[inline]
    pub fn position(&self, way: u8) -> Option<usize> {
        delegate!(self, s => s.position(way))
    }

    /// Whether `way` currently sits in the LRU position.
    #[inline]
    pub fn is_lru(&self, way: u8) -> bool {
        delegate!(self, s => s.is_lru(way))
    }

    /// Moves `way` to the MRU position; inserts it if absent.
    #[inline]
    pub fn touch(&mut self, way: u8) {
        delegate!(self, s => s.touch(way))
    }

    /// Inserts `way` at the MRU position.
    #[inline]
    pub fn push_mru(&mut self, way: u8) {
        delegate!(self, s => s.push_mru(way))
    }

    /// Inserts `way` at the LRU position (used when demoting a block).
    #[inline]
    pub fn push_lru(&mut self, way: u8) {
        delegate!(self, s => s.push_lru(way))
    }

    /// Removes and returns the LRU way.
    #[inline]
    pub fn pop_lru(&mut self) -> Option<u8> {
        delegate!(self, s => s.pop_lru())
    }

    /// Removes `way` from the stack; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, way: u8) -> bool {
        delegate!(self, s => s.remove(way))
    }

    /// The way at position `pos` from the MRU end.
    #[inline]
    pub fn at(&self, pos: usize) -> u8 {
        delegate!(self, s => s.at(pos))
    }

    /// Iterates from the LRU end towards the MRU end — the walk order of
    /// Algorithm 1.
    pub fn iter_from_lru(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len()).rev().map(move |p| self.at(p))
    }

    /// Iterates from the MRU end towards the LRU end.
    pub fn iter_from_mru(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len()).map(move |p| self.at(p))
    }

    /// Writes the recency state to a snapshot (variant tag + payload).
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        match self {
            Recency::Packed(p) => {
                w.put_u8(0);
                w.put_u64(p.bits);
                w.put_u8(p.len);
            }
            Recency::Wide(s) => {
                w.put_u8(1);
                w.put_u8_slice(&s.order);
            }
        }
    }

    /// Restores the recency state from a snapshot. The variant is fixed
    /// by the set's associativity at construction, so a snapshot written
    /// for the other variant is a structural mismatch, not data loss.
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Mismatch`] when the stored
    /// variant differs; decode errors otherwise.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        use simcore::snapshot::SnapshotError;
        let tag = r.get_u8()?;
        match (tag, &mut *self) {
            (0, Recency::Packed(p)) => {
                p.bits = r.get_u64()?;
                p.len = r.get_u8()?;
                if p.len as usize > MAX_WAYS {
                    return Err(SnapshotError::Corrupt("packed recency length > 16"));
                }
                Ok(())
            }
            (1, Recency::Wide(s)) => {
                s.order = r.get_u8_vec()?;
                Ok(())
            }
            (0 | 1, _) => Err(SnapshotError::Mismatch("recency variant")),
            _ => Err(SnapshotError::Corrupt("recency variant tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_ways_orders_zero_as_mru() {
        let s = LruStack::with_ways(4);
        assert_eq!(s.mru(), Some(0));
        assert_eq!(s.lru(), Some(3));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn touch_promotes_to_mru_preserving_others() {
        let mut s = LruStack::with_ways(4); // 0,1,2,3
        s.touch(2); // 2,0,1,3
        assert_eq!(s.iter_from_mru().collect::<Vec<_>>(), vec![2, 0, 1, 3]);
        s.touch(3); // 3,2,0,1
        assert_eq!(s.lru(), Some(1));
    }

    #[test]
    fn touch_inserts_missing_way() {
        let mut s = LruStack::new();
        s.touch(5);
        assert_eq!(s.mru(), Some(5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn push_and_pop_lru() {
        let mut s = LruStack::new();
        s.push_mru(1);
        s.push_lru(2);
        assert_eq!(s.iter_from_mru().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(s.pop_lru(), Some(2));
        assert_eq!(s.pop_lru(), Some(1));
        assert_eq!(s.pop_lru(), None);
    }

    #[test]
    fn remove_middle_way() {
        let mut s = LruStack::with_ways(3); // 0,1,2
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert_eq!(s.iter_from_mru().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn lru_walk_order_matches_algorithm_1() {
        let mut s = LruStack::with_ways(4);
        s.touch(3); // 3,0,1,2
        assert_eq!(s.iter_from_lru().collect::<Vec<_>>(), vec![2, 1, 0, 3]);
    }

    #[test]
    fn is_lru_and_position() {
        let s = LruStack::with_ways(2);
        assert!(s.is_lru(1));
        assert!(!s.is_lru(0));
        assert_eq!(s.position(0), Some(0));
        assert_eq!(s.position(7), None);
    }

    #[test]
    fn packed_mirrors_reference_on_basic_ops() {
        let mut p = PackedLru::with_ways(4);
        let mut r = LruStack::with_ways(4);
        for way in [2, 3, 2, 0, 1, 3] {
            p.touch(way);
            r.touch(way);
            assert_eq!(
                p.iter_from_mru().collect::<Vec<_>>(),
                r.iter_from_mru().collect::<Vec<_>>()
            );
            assert_eq!(p.mru(), r.mru());
            assert_eq!(p.lru(), r.lru());
        }
    }

    #[test]
    fn packed_position_finds_every_way_at_full_occupancy() {
        let mut p = PackedLru::with_ways(16);
        for way in 0..16u8 {
            assert_eq!(p.position(way), Some(way as usize));
        }
        p.touch(15); // 15,0,1,..,14
        assert_eq!(p.position(15), Some(0));
        assert_eq!(p.position(14), Some(15));
        assert_eq!(p.lru(), Some(14));
    }

    #[test]
    fn packed_position_ignores_zeroed_tail_nibbles() {
        // Unused nibbles are zero; way 0 must not be "found" there.
        let mut p = PackedLru::new();
        assert_eq!(p.position(0), None);
        p.push_mru(3);
        assert_eq!(p.position(0), None);
        p.push_lru(0);
        assert_eq!(p.position(0), Some(1));
    }

    #[test]
    fn packed_remove_at_every_position() {
        for victim in 0..16u8 {
            let mut p = PackedLru::with_ways(16);
            let mut r = LruStack::with_ways(16);
            assert!(p.remove(victim));
            assert!(r.remove(victim));
            assert!(!p.remove(victim));
            assert_eq!(
                p.iter_from_mru().collect::<Vec<_>>(),
                r.iter_from_mru().collect::<Vec<_>>()
            );
            assert_eq!(p.len(), 15);
        }
    }

    #[test]
    fn packed_pop_lru_drains_in_reference_order() {
        let mut p = PackedLru::with_ways(5);
        let mut r = LruStack::with_ways(5);
        p.touch(2);
        r.touch(2);
        while let Some(w) = r.pop_lru() {
            assert_eq!(p.pop_lru(), Some(w));
        }
        assert_eq!(p.pop_lru(), None);
        assert!(p.is_empty());
    }

    #[test]
    fn packed_canonical_form_supports_eq() {
        // Two routes to the same ordering compare equal (tail nibbles
        // stay zeroed through pop/remove).
        let mut a = PackedLru::with_ways(3); // 0,1,2
        a.pop_lru(); // 0,1
        let mut b = PackedLru::new();
        b.push_mru(1);
        b.push_mru(0); // 0,1
        assert_eq!(a, b);
        let mut c = PackedLru::with_ways(3);
        c.remove(2);
        assert_eq!(a, c);
    }

    #[test]
    fn packed_iter_from_lru_matches_algorithm_1_walk() {
        let mut s = PackedLru::with_ways(4);
        s.touch(3); // 3,0,1,2
        assert_eq!(s.iter_from_lru().collect::<Vec<_>>(), vec![2, 1, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn packed_push_beyond_sixteen_ways_panics() {
        let mut s = PackedLru::with_ways(16);
        s.pop_lru();
        s.push_mru(15);
        s.push_lru(0); // 17th way
    }

    #[test]
    fn recency_picks_variant_by_associativity() {
        assert!(matches!(Recency::for_ways(16), Recency::Packed(_)));
        assert!(matches!(Recency::for_ways(32), Recency::Wide(_)));
    }

    #[test]
    fn recency_wide_handles_way_indices_beyond_nibble_range() {
        let mut r = Recency::for_ways(32);
        for way in [31u8, 17, 4, 20] {
            r.push_mru(way);
        }
        assert_eq!(r.mru(), Some(20));
        assert_eq!(r.lru(), Some(31));
        assert_eq!(r.position(17), Some(2));
        r.touch(31);
        assert_eq!(r.iter_from_lru().collect::<Vec<_>>(), vec![17, 4, 20, 31]);
        assert!(r.remove(4));
        assert_eq!(r.pop_lru(), Some(17));
    }

    // -----------------------------------------------------------------
    // Packed word vs the reference model, under random op sequences.

    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        /// A hit (or a miss-fill when absent): promote to MRU.
        Touch(u8),
        /// A victim pick: pop the LRU way.
        Victim,
        /// Algorithm 1's demotion: drop from one stack...
        Remove(u8),
        /// ...and reinsert at the other stack's LRU end.
        Demote(u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..16).prop_map(Op::Touch),
            Just(Op::Victim),
            (0u8..16).prop_map(Op::Remove),
            (0u8..16).prop_map(Op::Demote),
        ]
    }

    proptest! {
        /// Every observable of [`PackedLru`] — order, ends, positions,
        /// membership, canonical equality — matches a `Vec<u8>` reference
        /// model (front = MRU) across random touch/victim/demote
        /// sequences. [`LruStack`] runs alongside as a second witness so
        /// the packed word and the wide fallback can never drift apart.
        #[test]
        fn packed_lru_matches_reference_model(ops in proptest::collection::vec(op(), 0..300)) {
            let mut packed = PackedLru::new();
            let mut wide = LruStack::new();
            let mut model: Vec<u8> = Vec::new(); // front = MRU
            for op in ops {
                match op {
                    Op::Touch(w) => {
                        packed.touch(w);
                        wide.touch(w);
                        model.retain(|&x| x != w);
                        model.insert(0, w);
                    }
                    Op::Victim => {
                        let expect = model.pop();
                        prop_assert_eq!(packed.pop_lru(), expect);
                        prop_assert_eq!(wide.pop_lru(), expect);
                    }
                    Op::Remove(w) => {
                        let present = model.contains(&w);
                        prop_assert_eq!(packed.remove(w), present);
                        prop_assert_eq!(wide.remove(w), present);
                        model.retain(|&x| x != w);
                    }
                    Op::Demote(w) => {
                        if !model.contains(&w) {
                            packed.push_lru(w);
                            wide.push_lru(w);
                            model.push(w);
                        }
                    }
                }
                prop_assert_eq!(packed.iter_from_mru().collect::<Vec<_>>(), model.clone());
                prop_assert_eq!(packed.iter_from_lru().collect::<Vec<_>>(),
                                model.iter().rev().copied().collect::<Vec<_>>());
                prop_assert_eq!(packed.len(), model.len());
                prop_assert_eq!(packed.mru(), model.first().copied());
                prop_assert_eq!(packed.lru(), model.last().copied());
                for w in 0u8..16 {
                    prop_assert_eq!(packed.position(w), model.iter().position(|&x| x == w));
                    prop_assert_eq!(packed.contains(w), model.contains(&w));
                }
                // The packed word never drifts from the wide fallback.
                prop_assert_eq!(packed.iter_from_mru().collect::<Vec<_>>(),
                                wide.iter_from_mru().collect::<Vec<_>>());
                // Canonical form: equal histories yield equal words.
                let mut replay = PackedLru::new();
                for w in model.iter().rev() {
                    replay.push_mru(*w);
                }
                prop_assert_eq!(replay, packed);
            }
        }
    }
}
