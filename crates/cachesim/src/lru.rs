//! An explicit least-recently-used stack over small way indices.
//!
//! The paper's mechanisms observe LRU *positions* directly: a hit in the
//! LRU block increments the "loss" counter (Section 2.1), and Algorithm 1
//! walks the shared partition's stack from the LRU end. [`LruStack`] keeps
//! the recency order as an explicit sequence (MRU first) so those
//! operations are natural and O(ways), which is tiny for the 2–16-way
//! caches of Table 1.

/// A recency ordering over way indices, most-recently-used first.
///
/// The stack does not have to contain every way of a set: the adaptive
/// last-level cache keeps one stack per private partition and one for the
/// shared partition, and ways migrate between them.
///
/// # Example
///
/// ```
/// use cachesim::lru::LruStack;
/// let mut s = LruStack::new();
/// s.push_mru(0);
/// s.push_mru(1);          // order: 1, 0
/// assert_eq!(s.lru(), Some(0));
/// s.touch(0);             // order: 0, 1
/// assert_eq!(s.lru(), Some(1));
/// assert_eq!(s.pop_lru(), Some(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LruStack {
    /// Way indices, index 0 = MRU, last = LRU.
    order: Vec<u8>,
}

impl LruStack {
    /// Creates an empty stack.
    pub const fn new() -> Self {
        LruStack { order: Vec::new() }
    }

    /// Creates a stack pre-populated with ways `0..ways`, way 0 as MRU.
    pub fn with_ways(ways: usize) -> Self {
        LruStack {
            order: (0..ways as u8).collect(),
        }
    }

    /// Number of ways currently tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the stack tracks no ways.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The most recently used way, if any.
    #[inline]
    pub fn mru(&self) -> Option<u8> {
        self.order.first().copied()
    }

    /// The least recently used way, if any.
    #[inline]
    pub fn lru(&self) -> Option<u8> {
        self.order.last().copied()
    }

    /// Whether `way` is currently in the stack.
    pub fn contains(&self, way: u8) -> bool {
        self.order.contains(&way)
    }

    /// The position of `way` from the MRU end (0 = MRU), if present.
    pub fn position(&self, way: u8) -> Option<usize> {
        self.order.iter().position(|&w| w == way)
    }

    /// Whether `way` currently sits in the LRU position.
    pub fn is_lru(&self, way: u8) -> bool {
        self.lru() == Some(way)
    }

    /// Moves `way` to the MRU position; inserts it if absent.
    pub fn touch(&mut self, way: u8) {
        if let Some(pos) = self.position(way) {
            self.order[..=pos].rotate_right(1);
        } else {
            self.order.insert(0, way);
        }
    }

    /// Inserts `way` at the MRU position.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `way` is already present (a set must never
    /// track the same way twice).
    pub fn push_mru(&mut self, way: u8) {
        debug_assert!(!self.contains(way), "way {way} already tracked");
        self.order.insert(0, way);
    }

    /// Inserts `way` at the LRU position (used when demoting a block).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `way` is already present.
    pub fn push_lru(&mut self, way: u8) {
        debug_assert!(!self.contains(way), "way {way} already tracked");
        self.order.push(way);
    }

    /// Removes and returns the LRU way.
    pub fn pop_lru(&mut self) -> Option<u8> {
        self.order.pop()
    }

    /// Removes `way` from the stack; returns whether it was present.
    pub fn remove(&mut self, way: u8) -> bool {
        if let Some(pos) = self.position(way) {
            self.order.remove(pos);
            true
        } else {
            false
        }
    }

    /// Iterates from the LRU end towards the MRU end — the walk order of
    /// Algorithm 1.
    pub fn iter_from_lru(&self) -> impl Iterator<Item = u8> + '_ {
        self.order.iter().rev().copied()
    }

    /// Iterates from the MRU end towards the LRU end.
    pub fn iter_from_mru(&self) -> impl Iterator<Item = u8> + '_ {
        self.order.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_ways_orders_zero_as_mru() {
        let s = LruStack::with_ways(4);
        assert_eq!(s.mru(), Some(0));
        assert_eq!(s.lru(), Some(3));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn touch_promotes_to_mru_preserving_others() {
        let mut s = LruStack::with_ways(4); // 0,1,2,3
        s.touch(2); // 2,0,1,3
        assert_eq!(s.iter_from_mru().collect::<Vec<_>>(), vec![2, 0, 1, 3]);
        s.touch(3); // 3,2,0,1
        assert_eq!(s.lru(), Some(1));
    }

    #[test]
    fn touch_inserts_missing_way() {
        let mut s = LruStack::new();
        s.touch(5);
        assert_eq!(s.mru(), Some(5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn push_and_pop_lru() {
        let mut s = LruStack::new();
        s.push_mru(1);
        s.push_lru(2);
        assert_eq!(s.iter_from_mru().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(s.pop_lru(), Some(2));
        assert_eq!(s.pop_lru(), Some(1));
        assert_eq!(s.pop_lru(), None);
    }

    #[test]
    fn remove_middle_way() {
        let mut s = LruStack::with_ways(3); // 0,1,2
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert_eq!(s.iter_from_mru().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn lru_walk_order_matches_algorithm_1() {
        let mut s = LruStack::with_ways(4);
        s.touch(3); // 3,0,1,2
        assert_eq!(s.iter_from_lru().collect::<Vec<_>>(), vec![2, 1, 0, 3]);
    }

    #[test]
    fn is_lru_and_position() {
        let s = LruStack::with_ways(2);
        assert!(s.is_lru(1));
        assert!(!s.is_lru(0));
        assert_eq!(s.position(0), Some(0));
        assert_eq!(s.position(7), None);
    }
}
