//! A fixed-size table with one slot per core.
//!
//! The paper's sharing engine keeps several per-core structures: the two
//! global counters of Figure 4(c) and the partition parameters of
//! Figure 4(d). [`PerCore`] wraps a `Vec` indexed by [`CoreId`] so that
//! those tables cannot be indexed with a bare integer by accident.

use std::fmt;
use std::ops::{Index, IndexMut};

use simcore::types::CoreId;

/// A table with exactly one `T` per core.
///
/// # Example
///
/// ```
/// use cachesim::percore::PerCore;
/// use simcore::types::CoreId;
///
/// let mut quotas: PerCore<u32> = PerCore::filled(4, 4);
/// let c2 = CoreId::from_index(2);
/// quotas[c2] += 1;
/// assert_eq!(quotas[c2], 5);
/// assert_eq!(quotas.iter().sum::<u32>(), 17);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerCore<T> {
    slots: Vec<T>,
}

impl<T> PerCore<T> {
    /// Creates a table from a closure invoked once per core.
    pub fn from_fn(cores: usize, mut f: impl FnMut(CoreId) -> T) -> Self {
        PerCore {
            slots: CoreId::all(cores).map(&mut f).collect(),
        }
    }

    /// Number of cores.
    #[inline]
    pub fn cores(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over the values in core order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter()
    }

    /// Iterates mutably over the values in core order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut()
    }

    /// Iterates over `(CoreId, &T)` pairs.
    pub fn enumerate(&self) -> impl Iterator<Item = (CoreId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, t)| (CoreId::from_index(i as u8), t))
    }

    /// The core whose value maximizes `key`, with its value.
    pub fn max_by_key<K: PartialOrd>(&self, mut key: impl FnMut(&T) -> K) -> Option<(CoreId, &T)> {
        let mut best: Option<(CoreId, &T, K)> = None;
        for (c, t) in self.enumerate() {
            let k = key(t);
            match &best {
                Some((_, _, bk)) if *bk >= k => {}
                _ => best = Some((c, t, k)),
            }
        }
        best.map(|(c, t, _)| (c, t))
    }

    /// The core whose value minimizes `key`, with its value.
    pub fn min_by_key<K: PartialOrd>(&self, mut key: impl FnMut(&T) -> K) -> Option<(CoreId, &T)> {
        let mut best: Option<(CoreId, &T, K)> = None;
        for (c, t) in self.enumerate() {
            let k = key(t);
            match &best {
                Some((_, _, bk)) if *bk <= k => {}
                _ => best = Some((c, t, k)),
            }
        }
        best.map(|(c, t, _)| (c, t))
    }
}

impl<T: Clone> PerCore<T> {
    /// Creates a table with every slot set to `value`.
    pub fn filled(cores: usize, value: T) -> Self {
        PerCore {
            slots: vec![value; cores],
        }
    }
}

impl<T: Default> PerCore<T> {
    /// Creates a table of defaults.
    pub fn new(cores: usize) -> Self {
        PerCore::from_fn(cores, |_| T::default())
    }
}

/// A dense core-major table: one row of `rows` slots per core, stored
/// contiguously in a single allocation.
///
/// This is the struct-of-arrays counterpart of `Vec<PerCore<T>>` for
/// per-set, per-core state (private LRU stacks, occupancy counters):
/// instead of one small `Vec` per cache set, each core's slots for
/// *every* set form one contiguous stripe, so an access stream from a
/// core walks a single array.
///
/// # Example
///
/// ```
/// use cachesim::percore::PerCoreTable;
/// use simcore::types::CoreId;
///
/// let mut t: PerCoreTable<u32> = PerCoreTable::filled(2, 4, 0);
/// *t.get_mut(CoreId::from_index(1), 3) += 5;
/// assert_eq!(*t.get(CoreId::from_index(1), 3), 5);
/// assert_eq!(t.row(CoreId::from_index(0)), &[0, 0, 0, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerCoreTable<T> {
    rows: usize,
    data: Vec<T>,
}

impl<T: Clone> PerCoreTable<T> {
    /// Creates a table of `cores` rows of `rows` slots, all set to
    /// `value`.
    pub fn filled(cores: usize, rows: usize, value: T) -> Self {
        PerCoreTable {
            rows,
            data: vec![value; cores * rows],
        }
    }
}

impl<T> PerCoreTable<T> {
    /// Number of cores (rows).
    #[inline]
    pub fn cores(&self) -> usize {
        self.data.len().checked_div(self.rows).unwrap_or(0)
    }

    /// Number of slots per core.
    #[inline]
    pub fn row_len(&self) -> usize {
        self.rows
    }

    /// The slot for `core` at `slot`.
    #[inline]
    pub fn get(&self, core: CoreId, slot: usize) -> &T {
        debug_assert!(slot < self.rows);
        &self.data[core.index() * self.rows + slot]
    }

    /// Mutable access to the slot for `core` at `slot`.
    #[inline]
    pub fn get_mut(&mut self, core: CoreId, slot: usize) -> &mut T {
        debug_assert!(slot < self.rows);
        &mut self.data[core.index() * self.rows + slot]
    }

    /// The whole contiguous stripe of `core`'s slots.
    #[inline]
    pub fn row(&self, core: CoreId) -> &[T] {
        let start = core.index() * self.rows;
        &self.data[start..start + self.rows]
    }
}

impl<T> Index<CoreId> for PerCore<T> {
    type Output = T;
    #[inline]
    fn index(&self, core: CoreId) -> &T {
        &self.slots[core.index()]
    }
}

impl<T> IndexMut<CoreId> for PerCore<T> {
    #[inline]
    fn index_mut(&mut self, core: CoreId) -> &mut T {
        &mut self.slots[core.index()]
    }
}

impl<T: fmt::Display> fmt::Display for PerCore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "core{i}: {t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_indexing() {
        let mut t: PerCore<u64> = PerCore::filled(4, 7);
        assert_eq!(t.cores(), 4);
        t[CoreId::from_index(3)] = 9;
        assert_eq!(t[CoreId::from_index(3)], 9);
        assert_eq!(t[CoreId::from_index(0)], 7);
    }

    #[test]
    fn from_fn_receives_core_ids() {
        let t = PerCore::from_fn(3, |c| c.index() * 10);
        assert_eq!(t[CoreId::from_index(2)], 20);
    }

    #[test]
    fn max_and_min_by_key() {
        let t = PerCore {
            slots: vec![5u64, 2, 9, 9],
        };
        let (max_core, &max) = t.max_by_key(|v| *v).unwrap();
        assert_eq!((max_core.index(), max), (2, 9), "first max wins");
        let (min_core, &min) = t.min_by_key(|v| *v).unwrap();
        assert_eq!((min_core.index(), min), (1, 2));
    }

    #[test]
    fn enumerate_pairs() {
        let t: PerCore<u8> = PerCore::new(2);
        let ids: Vec<usize> = t.enumerate().map(|(c, _)| c.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn display_nonempty() {
        let t: PerCore<u8> = PerCore::filled(2, 1);
        assert_eq!(format!("{t}"), "[core0: 1, core1: 1]");
    }

    #[test]
    fn table_rows_are_contiguous_and_independent() {
        let mut t: PerCoreTable<u32> = PerCoreTable::filled(3, 4, 0);
        assert_eq!(t.cores(), 3);
        assert_eq!(t.row_len(), 4);
        for slot in 0..4 {
            *t.get_mut(CoreId::from_index(1), slot) = slot as u32 + 1;
        }
        assert_eq!(t.row(CoreId::from_index(1)), &[1, 2, 3, 4]);
        assert_eq!(t.row(CoreId::from_index(0)), &[0, 0, 0, 0]);
        assert_eq!(t.row(CoreId::from_index(2)), &[0, 0, 0, 0]);
    }
}
