//! The shadow-tag table of Figure 4(b) with the set sampling of §4.6.
//!
//! Each monitored set has one *shadow tag* register per core. When a block
//! is evicted from the last-level cache, its block address is stored in the
//! shadow tag of the core that fetched it. A later miss whose address
//! matches the requester's shadow tag would have been a hit had that core
//! owned one more block in the set — the *gain* estimator of the adaptive
//! scheme.
//!
//! Section 4.6 shows that monitoring only the 1/16 of sets with the lowest
//! index is sufficient ("the tags with the lowest index represent the whole
//! cache very well"); the LRU-hit counters are still collected in all sets
//! and the comparison normalizes the shadow counts by the sampling factor.

use simcore::rng::SimRng;
use simcore::types::{BlockAddr, CoreId};

use crate::percore::PerCore;
use crate::swar;

/// Which subset of sets carries shadow-tag registers.
///
/// The paper (§4.6, citing the authors' earlier HiPC 2006 work) finds
/// that "monitoring the sets with the lowest index works well and better
/// than randomly generated subsets or subsets based on prime numbers".
/// All three strategies are provided so that claim can be re-examined
/// (see the `ablations` benchmark binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetSampling {
    /// Monitor the `sets >> shift` sets with the lowest index (the
    /// paper's choice; `shift = 4` is the 1/16 configuration).
    LowestIndex {
        /// log2 of the sampling ratio.
        shift: u32,
    },
    /// Monitor `sets >> shift` sets chosen uniformly at random.
    Random {
        /// log2 of the sampling ratio.
        shift: u32,
        /// Seed for the subset choice.
        seed: u64,
    },
    /// Monitor sets whose index is a multiple of a prime stride chosen
    /// to give approximately `sets >> shift` monitored sets.
    PrimeStride {
        /// log2 of the sampling ratio.
        shift: u32,
    },
}

impl SetSampling {
    /// The full-coverage configuration.
    pub const ALL: SetSampling = SetSampling::LowestIndex { shift: 0 };

    /// log2 of the sampling ratio (`shift = 4` samples 1/16 of sets).
    pub fn shift(&self) -> u32 {
        match self {
            SetSampling::LowestIndex { shift }
            | SetSampling::Random { shift, .. }
            | SetSampling::PrimeStride { shift } => *shift,
        }
    }

    /// Computes the monitored-set membership for a cache of `sets` sets.
    /// Also used by the set-sampled *full* simulation (`SampledL3`), which
    /// generalizes this table's §4.6 sampling to the whole last-level
    /// cache.
    pub fn membership(&self, sets: usize) -> Vec<bool> {
        let target = (sets >> self.shift()).max(1);
        match *self {
            SetSampling::LowestIndex { .. } => (0..sets).map(|i| i < target).collect(),
            SetSampling::Random { seed, .. } => {
                let mut picks: Vec<usize> = (0..sets).collect();
                SimRng::seed_from(seed ^ 0x5e75).shuffle(&mut picks);
                let mut member = vec![false; sets];
                for &i in picks.iter().take(target) {
                    member[i] = true;
                }
                member
            }
            SetSampling::PrimeStride { .. } => {
                let stride = next_prime(sets / target);
                let mut member = vec![false; sets];
                let mut count = 0;
                let mut i = 0;
                while i < sets && count < target {
                    member[i] = true;
                    count += 1;
                    i += stride;
                }
                member
            }
        }
    }
}

fn next_prime(n: usize) -> usize {
    fn is_prime(x: usize) -> bool {
        if x < 2 {
            return false;
        }
        let mut d = 2;
        while d * d <= x {
            if x.is_multiple_of(d) {
                return false;
            }
            d += 1;
        }
        true
    }
    let mut p = n.max(2);
    while !is_prime(p) {
        p += 1;
    }
    p
}

/// Shadow-tag table: one evicted-tag register per (monitored set, core),
/// plus the per-core "hits in the shadow tags" counters of Figure 4(c).
///
/// # Example
///
/// ```
/// use cachesim::shadow::ShadowTags;
/// use simcore::types::{BlockAddr, CoreId};
///
/// let mut st = ShadowTags::new(4096, 4, 0); // monitor every set
/// let c1 = CoreId::from_index(1);
/// st.record_eviction(7, c1, BlockAddr::new(0xabc));
/// assert!(st.check_miss(7, c1, BlockAddr::new(0xabc)));
/// assert_eq!(st.hits(c1), 1);
/// assert!(!st.check_miss(7, c1, BlockAddr::new(0xdef)));
/// ```
#[derive(Debug, Clone)]
pub struct ShadowTags {
    cores: usize,
    monitored_sets: usize,
    /// Sampling factor: total sets / monitored sets.
    factor: u64,
    /// Compact register slot per set; `-1` = unmonitored.
    slot_of: Vec<i32>,
    /// `cores * monitored_sets` raw block addresses, core-major so one
    /// core's registers are contiguous; [`EMPTY_TAG`] = empty register.
    /// A flat `u64` array keeps the per-miss probe a single load and
    /// compare (no `Option` discriminant in the hot path).
    tags: Vec<u64>,
    /// Packed one-byte digests of the registers, *slot-major*: word
    /// `slot * dwords_per_slot + core/8` holds core `core`'s digest in
    /// byte `core % 8`. All cores' digests for one set share a word, so
    /// the common non-matching miss probe reads this one word instead of
    /// reaching into the core-major tag stripe — the same SWAR wide
    /// compare the cache lookups use (`cachesim::swar`).
    digests: Vec<u64>,
    /// `⌈cores / 8⌉` digest words per monitored set.
    dwords_per_slot: usize,
    hits: PerCore<u64>,
}

/// Sentinel for an empty shadow register. Block addresses are cache-line
/// addresses (physical address >> 6), so `u64::MAX` can never collide.
const EMPTY_TAG: u64 = u64::MAX;

impl ShadowTags {
    /// Creates a shadow-tag table for a cache with `sets` sets and `cores`
    /// cores, monitoring the `sets >> sample_shift` sets with the lowest
    /// index (`sample_shift = 4` is the paper's 1/16 configuration;
    /// `sample_shift = 0` monitors every set).
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `cores` is zero, or if the shift leaves no
    /// monitored sets.
    pub fn new(sets: usize, cores: usize, sample_shift: u32) -> Self {
        ShadowTags::with_sampling(
            sets,
            cores,
            SetSampling::LowestIndex {
                shift: sample_shift,
            },
        )
    }

    /// Creates a shadow-tag table with an explicit [`SetSampling`]
    /// strategy.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `cores` is zero, or if the sampling leaves no
    /// monitored sets.
    pub fn with_sampling(sets: usize, cores: usize, sampling: SetSampling) -> Self {
        assert!(sets > 0 && cores > 0, "shadow tags need sets and cores");
        let member = sampling.membership(sets);
        let mut slot_of = vec![-1i32; sets];
        let mut monitored_sets = 0usize;
        for (i, m) in member.iter().enumerate() {
            if *m {
                slot_of[i] = monitored_sets as i32;
                monitored_sets += 1;
            }
        }
        assert!(monitored_sets > 0, "sampling leaves no monitored sets");
        let dwords_per_slot = cores.div_ceil(swar::LANES);
        ShadowTags {
            cores,
            monitored_sets,
            factor: (sets / monitored_sets) as u64,
            slot_of,
            tags: vec![EMPTY_TAG; cores * monitored_sets],
            // Zero digests with EMPTY_TAG registers are safe: an empty
            // register can never pass the exact confirm, so any digest
            // verdict for it is correct.
            digests: vec![0; monitored_sets * dwords_per_slot],
            dwords_per_slot,
            hits: PerCore::filled(cores, 0),
        }
    }

    /// Whether `set` is monitored (§4.6).
    #[inline]
    pub fn monitors(&self, set: usize) -> bool {
        self.slot_of[set] >= 0
    }

    /// Number of monitored sets.
    #[inline]
    pub fn monitored_sets(&self) -> usize {
        self.monitored_sets
    }

    /// The sampling factor used to normalize shadow-hit counts when they
    /// are compared against LRU-hit counts collected over all sets.
    #[inline]
    pub fn normalization_factor(&self) -> u64 {
        self.factor
    }

    #[inline]
    fn slot(&self, set: usize, core: CoreId) -> usize {
        core.index() * self.monitored_sets + self.slot_of[set] as usize
    }

    #[inline]
    fn dword(&self, set: usize, core: CoreId) -> usize {
        self.slot_of[set] as usize * self.dwords_per_slot + core.index() / swar::LANES
    }

    /// Records the tag of a block evicted on behalf of `owner` from `set`.
    /// Ignored for unmonitored sets.
    pub fn record_eviction(&mut self, set: usize, owner: CoreId, addr: BlockAddr) {
        if self.monitors(set) {
            let slot = self.slot(set, owner);
            self.tags[slot] = addr.raw();
            let idx = self.dword(set, owner);
            let shift = (owner.index() % swar::LANES) * 8;
            self.digests[idx] = (self.digests[idx] & !(0xffu64 << shift))
                | (u64::from(swar::digest(addr.raw())) << shift);
        }
    }

    /// Called on a last-level miss by `requester` in `set` for `addr`.
    /// Returns `true` (and counts a shadow hit) when the shadow tag
    /// matches, i.e. one more block per set would have made this a hit.
    ///
    /// The probe first compares one-byte digests in the slot-major packed
    /// word; only a digest match (1/256 of misses plus true hits) loads
    /// the full register from the core-major tag stripe.
    pub fn check_miss(&mut self, set: usize, requester: CoreId, addr: BlockAddr) -> bool {
        if !self.monitors(set) {
            return false;
        }
        let word = self.digests[self.dword(set, requester)];
        let lane = (requester.index() % swar::LANES) * 8;
        if (word >> lane) as u8 != swar::digest(addr.raw()) {
            return false;
        }
        let slot = self.slot(set, requester);
        if self.tags[slot] == addr.raw() {
            self.hits[requester] += 1;
            true
        } else {
            false
        }
    }

    /// Bitmask of cores whose shadow register in `set` holds `addr` —
    /// one SWAR pass over the set's packed digest words (all cores at
    /// once), candidates confirmed with exact tag compares. `0` for
    /// unmonitored sets. Read-only: no hit counters are touched.
    pub fn matching_cores(&self, set: usize, addr: BlockAddr) -> u64 {
        if !self.monitors(set) {
            return 0;
        }
        let base = self.slot_of[set] as usize * self.dwords_per_slot;
        let d = swar::digest(addr.raw());
        let mut candidates = 0u64;
        for k in 0..self.dwords_per_slot {
            candidates |=
                u64::from(swar::match_mask(self.digests[base + k], d)) << (k * swar::LANES);
        }
        let mut confirmed = 0u64;
        let mut m = candidates;
        while m != 0 {
            let c = m.trailing_zeros() as usize;
            // Lanes past the core count carry zero digests; the bounds
            // check plus exact confirm keeps them out of the result.
            if c < self.cores
                && self.tags[c * self.monitored_sets + self.slot_of[set] as usize] == addr.raw()
            {
                confirmed |= 1u64 << c;
            }
            m &= m - 1;
        }
        confirmed
    }

    /// Raw shadow-hit count for `core` since the last reset.
    #[inline]
    pub fn hits(&self, core: CoreId) -> u64 {
        self.hits[core]
    }

    /// Shadow-hit count scaled by the sampling factor, comparable against
    /// LRU-hit counts collected over all sets.
    #[inline]
    pub fn normalized_hits(&self, core: CoreId) -> u64 {
        self.hits[core] * self.factor
    }

    /// Resets the hit counters (tag registers persist across periods).
    pub fn reset_counters(&mut self) {
        for h in self.hits.iter_mut() {
            *h = 0;
        }
    }

    /// Storage cost in bits for the monitored registers, assuming `t`-bit
    /// tags (the `0.06 * s * p * t` term of §2.7).
    pub fn storage_bits(&self, tag_bits: u64) -> u64 {
        (self.monitored_sets * self.cores) as u64 * tag_bits
    }

    /// Writes the mutable state (registers, digests, hit counters) to a
    /// snapshot. The membership map is derived from configuration and
    /// not written.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_u64_slice(&self.tags);
        w.put_u64_slice(&self.digests);
        w.put_usize(self.cores);
        for core in CoreId::all(self.cores) {
            w.put_u64(self.hits[core]);
        }
    }

    /// Restores state written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Mismatch`] when register or
    /// core counts differ from this table's configuration.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        use simcore::snapshot::SnapshotError;
        let tags = r.get_u64_vec()?;
        let digests = r.get_u64_vec()?;
        if tags.len() != self.tags.len() || digests.len() != self.digests.len() {
            return Err(SnapshotError::Mismatch("shadow tag geometry"));
        }
        self.tags = tags;
        self.digests = digests;
        let cores = r.get_usize()?;
        if cores != self.cores {
            return Err(SnapshotError::Mismatch("shadow tag core count"));
        }
        for h in self.hits.iter_mut() {
            *h = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u8) -> CoreId {
        CoreId::from_index(i)
    }

    #[test]
    fn eviction_then_matching_miss_counts_hit() {
        let mut st = ShadowTags::new(64, 4, 0);
        st.record_eviction(3, c(2), BlockAddr::new(0x55));
        assert!(st.check_miss(3, c(2), BlockAddr::new(0x55)));
        assert_eq!(st.hits(c(2)), 1);
    }

    #[test]
    fn miss_on_other_core_register_does_not_count() {
        let mut st = ShadowTags::new(64, 4, 0);
        st.record_eviction(3, c(2), BlockAddr::new(0x55));
        assert!(!st.check_miss(3, c(1), BlockAddr::new(0x55)));
        assert_eq!(st.hits(c(1)), 0);
    }

    #[test]
    fn new_eviction_overwrites_register() {
        let mut st = ShadowTags::new(64, 2, 0);
        st.record_eviction(0, c(0), BlockAddr::new(1));
        st.record_eviction(0, c(0), BlockAddr::new(2));
        assert!(!st.check_miss(0, c(0), BlockAddr::new(1)));
        assert!(st.check_miss(0, c(0), BlockAddr::new(2)));
    }

    #[test]
    fn sampling_monitors_lowest_index_sets() {
        let st = ShadowTags::new(4096, 4, 4);
        assert_eq!(st.monitored_sets(), 256);
        assert!(st.monitors(0) && st.monitors(255));
        assert!(!st.monitors(256) && !st.monitors(4095));
        assert_eq!(st.normalization_factor(), 16);
    }

    #[test]
    fn unmonitored_sets_are_ignored() {
        let mut st = ShadowTags::new(64, 2, 2); // monitor 16 sets
        st.record_eviction(20, c(0), BlockAddr::new(9));
        assert!(!st.check_miss(20, c(0), BlockAddr::new(9)));
        assert_eq!(st.hits(c(0)), 0);
    }

    #[test]
    fn normalized_hits_scale_by_factor() {
        let mut st = ShadowTags::new(64, 2, 2);
        st.record_eviction(1, c(0), BlockAddr::new(9));
        st.check_miss(1, c(0), BlockAddr::new(9));
        assert_eq!(st.hits(c(0)), 1);
        assert_eq!(st.normalized_hits(c(0)), 4);
    }

    #[test]
    fn reset_clears_counters_not_tags() {
        let mut st = ShadowTags::new(64, 2, 0);
        st.record_eviction(0, c(0), BlockAddr::new(9));
        st.check_miss(0, c(0), BlockAddr::new(9));
        st.reset_counters();
        assert_eq!(st.hits(c(0)), 0);
        assert!(
            st.check_miss(0, c(0), BlockAddr::new(9)),
            "tag register persists"
        );
    }

    #[test]
    fn storage_cost_matches_formula() {
        // 6% of 4096 sets = 256 sets, 4 cores, 24-bit tags.
        let st = ShadowTags::new(4096, 4, 4);
        assert_eq!(st.storage_bits(24), 256 * 4 * 24);
    }

    #[test]
    fn excessive_shift_clamps_to_one_set() {
        let st = ShadowTags::new(8, 2, 4);
        assert_eq!(st.monitored_sets(), 1);
        assert!(st.monitors(0));
        assert!(!st.monitors(7));
    }

    #[test]
    fn random_sampling_monitors_expected_count() {
        let st = ShadowTags::with_sampling(64, 2, SetSampling::Random { shift: 2, seed: 9 });
        assert_eq!(st.monitored_sets(), 16);
        assert_eq!(st.normalization_factor(), 4);
        let monitored: Vec<usize> = (0..64).filter(|&i| st.monitors(i)).collect();
        assert_eq!(monitored.len(), 16);
        // Random sampling is not simply the lowest-index prefix.
        assert_ne!(monitored, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn prime_stride_sampling_uses_a_prime_step() {
        let st = ShadowTags::with_sampling(64, 2, SetSampling::PrimeStride { shift: 2 });
        let monitored: Vec<usize> = (0..64).filter(|&i| st.monitors(i)).collect();
        assert!(!monitored.is_empty());
        // Consecutive monitored sets differ by the same prime stride (5 for 64>>2=16 -> 64/16=4 -> next prime 5).
        for w in monitored.windows(2) {
            assert_eq!(w[1] - w[0], 5);
        }
    }

    #[test]
    fn matching_cores_reports_exact_bitmask() {
        let mut st = ShadowTags::new(64, 4, 0);
        let a = BlockAddr::new(0x123);
        st.record_eviction(5, c(1), a);
        st.record_eviction(5, c(3), a);
        st.record_eviction(5, c(2), BlockAddr::new(0x456));
        assert_eq!(st.matching_cores(5, a), 0b1010);
        assert_eq!(st.matching_cores(5, BlockAddr::new(0x456)), 0b0100);
        assert_eq!(st.matching_cores(5, BlockAddr::new(0x789)), 0);
        assert_eq!(st.matching_cores(6, a), 0, "other sets untouched");
        assert_eq!(st.hits(c(1)), 0, "read-only probe");
    }

    #[test]
    fn digest_fast_reject_never_loses_hits() {
        use simcore::rng::SimRng;
        let mut st = ShadowTags::new(32, 4, 1);
        let mut model = vec![u64::MAX; 4 * 32];
        let mut rng = SimRng::seed_from(17);
        for _ in 0..5_000 {
            let set = rng.below(32) as usize;
            let core = rng.below(4) as u8;
            let a = BlockAddr::new(rng.below(1 << 16));
            if rng.chance(0.5) {
                st.record_eviction(set, c(core), a);
                if st.monitors(set) {
                    model[usize::from(core) * 32 + set] = a.raw();
                }
            } else {
                let expect = st.monitors(set) && model[usize::from(core) * 32 + set] == a.raw();
                assert_eq!(st.check_miss(set, c(core), a), expect);
            }
        }
    }

    #[test]
    fn sampled_strategies_still_count_hits() {
        for sampling in [
            SetSampling::LowestIndex { shift: 1 },
            SetSampling::Random { shift: 1, seed: 3 },
            SetSampling::PrimeStride { shift: 1 },
        ] {
            let mut st = ShadowTags::with_sampling(32, 2, sampling);
            let set = (0..32).find(|&i| st.monitors(i)).unwrap();
            st.record_eviction(set, CoreId::from_index(0), BlockAddr::new(42));
            assert!(st.check_miss(set, CoreId::from_index(0), BlockAddr::new(42)));
            assert_eq!(st.hits(CoreId::from_index(0)), 1);
        }
    }
}
