//! A generic set-associative, write-back/write-allocate cache.
//!
//! [`Cache`] models the conventional levels of Table 1 (L1I, L1D, L2) and
//! the plain last-level organizations the paper compares against (private
//! slices, one shared LRU cache, and the slices of the cooperative
//! scheme). The adaptive organization has its own bespoke set structure in
//! the `nuca-core` crate, built from the same packed-LRU primitive.
//!
//! Timing is handled by the callers; this type answers *what happened*
//! (hit, miss, eviction), not *when*.
//!
//! # Layout
//!
//! The cache is stored struct-of-arrays: one flat set-major `Vec` of
//! block addresses, one of owners, a `u32` valid/dirty bitmask per set,
//! and one [`Recency`] word per set. A lookup touches one contiguous
//! tag stripe plus two words — no per-set pointer chasing, no per-access
//! allocation — which is what the per-step hot path of the event-driven
//! run loop needs.

use simcore::config::CacheGeometry;
use simcore::invariant::{Invariant, Violation};
use simcore::stats::HitMiss;
use simcore::types::{Address, BlockAddr, CoreId};

use crate::lru::Recency;
use crate::swar::{self, TagFilter};

/// Associativity at or above which lookups go through the SWAR digest
/// filter. Below this a scalar walk of at most three tags is already
/// cheaper than maintaining and probing packed digests.
const WIDE_PROBE_MIN_WAYS: usize = 4;

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The block was present. `was_lru` reports whether it sat in the LRU
    /// position before the access — the event the paper's "hits in the LRU
    /// blocks" counter (Figure 4c) observes.
    Hit {
        /// Whether the block was the set's LRU block before this access.
        was_lru: bool,
    },
    /// The block was absent.
    Miss,
}

impl Lookup {
    /// Whether the lookup hit.
    #[inline]
    pub const fn is_hit(self) -> bool {
        matches!(self, Lookup::Hit { .. })
    }
}

/// A block pushed out of the cache by a fill or invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// Block address of the victim.
    pub addr: BlockAddr,
    /// Whether the victim was dirty (must be written back).
    pub dirty: bool,
    /// The core that originally fetched the victim.
    pub owner: CoreId,
}

/// A set-associative, write-back/write-allocate cache with LRU replacement.
///
/// # Example
///
/// ```
/// use cachesim::cache::{Cache, Lookup};
/// use simcore::config::CacheGeometry;
/// use simcore::types::{Address, CoreId};
///
/// let mut c = Cache::new(CacheGeometry::new(4096, 2, 64, 1).unwrap());
/// let core = CoreId::from_index(0);
/// let a = Address::new(0x80);
/// assert_eq!(c.access(a, true, core), Lookup::Miss);
/// c.fill(a, true, core);                        // write-allocate, dirty
/// let evicted = c.fill(Address::new(0x80 + 4096), false, core);
/// assert!(evicted.is_none());                   // other way still free
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeometry,
    /// Associativity, cached out of `geom` for the hot path.
    ways: usize,
    /// Flat set-major block addresses: `tags[set * ways + way]`.
    /// Meaningful only where the set's valid bit is set.
    tags: Vec<BlockAddr>,
    /// Flat set-major fetching cores, parallel to `tags`.
    owners: Vec<CoreId>,
    /// One valid bit per way, per set (associativity caps at 32).
    valid: Vec<u32>,
    /// One dirty bit per way, per set.
    dirty: Vec<u32>,
    /// One recency word per set (packed when the associativity fits).
    lru: Vec<Recency>,
    /// Packed per-way tag digests for the SWAR wide probe.
    filter: TagFilter,
    /// Whether `find` consults the filter (associativity ≥ 4).
    wide: bool,
    /// Last-hit-way memo: `way + 1` per set, 0 = empty. A validated memo
    /// hit answers `find` without walking the set; because a set never
    /// holds duplicate block addresses (see [`Invariant::audit`]), the
    /// memo'd way and the walk always agree — pure search-order
    /// optimization, like the SWAR filter one level down. Maintained
    /// unconditionally; *read* only when `memo_on`.
    memo: Vec<u8>,
    /// Whether `find` consults the last-hit-way memo (the fast path).
    memo_on: bool,
    stats: HitMiss,
    writebacks: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let ways = geom.total_ways() as usize;
        let sets = geom.sets() as usize;
        Cache {
            geom,
            ways,
            tags: vec![BlockAddr::new(0); sets * ways], // lint:allow(L7): constructor
            owners: vec![CoreId::from_index(0); sets * ways], // lint:allow(L7): constructor
            valid: vec![0; sets],                       // lint:allow(L7): constructor
            dirty: vec![0; sets],                       // lint:allow(L7): constructor
            lru: vec![Recency::for_ways(ways); sets],   // lint:allow(L7): constructor
            filter: TagFilter::new(sets, ways),
            wide: ways >= WIDE_PROBE_MIN_WAYS,
            memo: vec![0; sets], // lint:allow(L7): constructor
            memo_on: true,
            stats: HitMiss::new(),
            writebacks: 0,
        }
    }

    /// Enables or disables the last-hit-way memo read in lookups (the
    /// `--no-fast-path` escape hatch). The memo keeps being maintained
    /// either way, so toggling needs no rebuild; results are identical
    /// in both modes.
    pub fn set_memo(&mut self, enabled: bool) {
        self.memo_on = enabled;
    }

    /// The cache geometry.
    #[inline]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// The set index for an address.
    #[inline]
    pub fn set_index(&self, addr: Address) -> usize {
        addr.block(self.geom.offset_bits())
            .index_bits(0, self.geom.index_bits()) as usize
    }

    /// The way holding `blk` in `set`, if resident. Wide caches first
    /// narrow the valid mask to SWAR digest candidates (one or two packed
    /// `u64` compares across all ways), then confirm each candidate with an
    /// exact tag compare; the confirm step makes the filter strictly exact,
    /// and candidate bits are walked in the same low-to-high way order as
    /// the scalar loop, so results are bit-identical.
    #[inline]
    fn find(&self, set: usize, blk: BlockAddr) -> Option<usize> {
        let base = set * self.ways;
        if self.memo_on {
            let m = self.memo[set];
            if m != 0 {
                let w = usize::from(m - 1);
                if self.valid[set] & (1 << w) != 0 && self.tags[base + w] == blk {
                    return Some(w);
                }
            }
        }
        let mut m = self.valid[set];
        if self.wide {
            m &= self.filter.candidates(set, swar::digest(blk.raw()));
        }
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            if self.tags[base + w] == blk {
                return Some(w);
            }
            m &= m - 1;
        }
        None
    }

    /// Accesses the cache: on a hit the block is promoted to MRU (and
    /// marked dirty for writes); on a miss nothing changes — callers decide
    /// whether and when to [`fill`](Self::fill).
    pub fn access(&mut self, addr: Address, write: bool, _core: CoreId) -> Lookup {
        let blk = addr.block(self.geom.offset_bits());
        let set = self.set_index(addr);
        if let Some(w) = self.find(set, blk) {
            return self.commit_hit(set, w, write);
        }
        self.note_miss();
        Lookup::Miss
    }

    /// Applies the miss-side update for an address that
    /// [`peek_hit_way`](Self::peek_hit_way) found absent: exactly what
    /// [`access`](Self::access) does on a miss — which is only the miss
    /// count. Recency and residency change at fill time, not lookup time.
    #[inline]
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Probes for a block without updating recency or statistics.
    pub fn probe(&self, addr: Address) -> bool {
        let blk = addr.block(self.geom.offset_bits());
        self.find(self.set_index(addr), blk).is_some()
    }

    /// Non-mutating hit probe for the fused TLB+L1 fast path: the way
    /// holding `addr`, if resident. No recency, dirty, memo or statistic
    /// update — pair with [`commit_hit_at`](Self::commit_hit_at) once the
    /// fused probe has decided the whole access goes through.
    #[inline]
    pub fn peek_hit_way(&self, addr: Address) -> Option<usize> {
        let blk = addr.block(self.geom.offset_bits());
        self.find(self.set_index(addr), blk)
    }

    /// Applies the hit-side updates for a way returned by
    /// [`peek_hit_way`](Self::peek_hit_way): exactly what
    /// [`access`](Self::access) does on a hit.
    #[inline]
    pub fn commit_hit_at(&mut self, addr: Address, way: usize, write: bool) -> Lookup {
        let set = self.set_index(addr);
        self.commit_hit(set, way, write)
    }

    /// The shared hit path: MRU promotion, dirty marking, statistics and
    /// the last-hit-way memo update.
    #[inline]
    fn commit_hit(&mut self, set: usize, w: usize, write: bool) -> Lookup {
        let was_lru = self.lru[set].is_lru(w as u8);
        self.lru[set].touch(w as u8);
        if write {
            self.dirty[set] |= 1 << w;
        }
        self.stats.hits += 1;
        self.memo[set] = w as u8 + 1;
        Lookup::Hit { was_lru }
    }

    /// Installs a block as MRU, evicting the LRU block if the set is full.
    ///
    /// Returns the evicted block, if any. Filling a block that is already
    /// present just promotes it (and merges the dirty bit).
    pub fn fill(&mut self, addr: Address, dirty: bool, owner: CoreId) -> Option<EvictedBlock> {
        let blk = addr.block(self.geom.offset_bits());
        let set = self.set_index(addr);

        // Already present: refresh.
        if let Some(w) = self.find(set, blk) {
            self.dirty[set] |= u32::from(dirty) << w;
            self.lru[set].touch(w as u8);
            self.memo[set] = w as u8 + 1;
            return None;
        }
        self.install_absent(set, blk, dirty, owner)
    }

    /// Fused access-plus-allocate for latency-free (functional) paths: one
    /// set walk answers the lookup, and a miss installs the block as MRU
    /// immediately. Bit-identical to [`access`](Self::access) followed by
    /// [`fill`](Self::fill) with nothing touching this cache in between —
    /// the hit path is `access`'s hit path, the miss path skips `fill`'s
    /// redundant re-probe and goes straight to the install.
    pub fn access_fill(
        &mut self,
        addr: Address,
        write: bool,
        owner: CoreId,
    ) -> (Lookup, Option<EvictedBlock>) {
        let blk = addr.block(self.geom.offset_bits());
        let set = self.set_index(addr);
        if let Some(w) = self.find(set, blk) {
            return (self.commit_hit(set, w, write), None);
        }
        self.stats.misses += 1;
        (Lookup::Miss, self.install_absent(set, blk, write, owner))
    }

    /// Installs a block known to be absent from `set`, evicting the LRU
    /// block if the set is full. The install half of [`fill`](Self::fill),
    /// shared with [`access_fill`](Self::access_fill).
    #[inline]
    fn install_absent(
        &mut self,
        set: usize,
        blk: BlockAddr,
        dirty: bool,
        owner: CoreId,
    ) -> Option<EvictedBlock> {
        let base = set * self.ways;
        // Free way?
        let full_mask = ((1u64 << self.ways) - 1) as u32;
        let free = !self.valid[set] & full_mask;
        if free != 0 {
            let w = free.trailing_zeros() as usize;
            self.tags[base + w] = blk;
            self.filter.record(set, w, swar::digest(blk.raw()));
            self.owners[base + w] = owner;
            self.valid[set] |= 1 << w;
            self.dirty[set] = (self.dirty[set] & !(1 << w)) | (u32::from(dirty) << w);
            self.lru[set].push_mru(w as u8);
            self.memo[set] = w as u8 + 1;
            debug_assert!(self.lru[set].len() <= self.ways);
            return None;
        }
        // Evict LRU. A full set always has an LRU way; fall back to way 0
        // defensively rather than aborting a long run (the Invariant audit
        // catches the corrupted stack).
        let w = usize::from(self.lru[set].pop_lru().unwrap_or(0));
        let victim_dirty = self.dirty[set] & (1 << w) != 0;
        if victim_dirty {
            self.writebacks += 1;
        }
        let victim = EvictedBlock {
            addr: self.tags[base + w],
            dirty: victim_dirty,
            owner: self.owners[base + w],
        };
        self.tags[base + w] = blk;
        self.filter.record(set, w, swar::digest(blk.raw()));
        self.owners[base + w] = owner;
        self.dirty[set] = (self.dirty[set] & !(1 << w)) | (u32::from(dirty) << w);
        self.lru[set].push_mru(w as u8);
        self.memo[set] = w as u8 + 1;
        Some(victim)
    }

    /// Removes a block if present, returning its metadata (used when an
    /// organization migrates a block to another slice).
    pub fn invalidate(&mut self, addr: Address) -> Option<EvictedBlock> {
        let blk = addr.block(self.geom.offset_bits());
        let set = self.set_index(addr);
        let w = self.find(set, blk)?;
        let out = EvictedBlock {
            addr: blk,
            dirty: self.dirty[set] & (1 << w) != 0,
            owner: self.owners[set * self.ways + w],
        };
        self.valid[set] &= !(1 << w);
        self.dirty[set] &= !(1 << w);
        self.lru[set].remove(w as u8);
        Some(out)
    }

    /// The owner recorded for a resident block.
    pub fn owner_of(&self, addr: Address) -> Option<CoreId> {
        let blk = addr.block(self.geom.offset_bits());
        let set = self.set_index(addr);
        self.find(set, blk)
            .map(|w| self.owners[set * self.ways + w])
    }

    /// Number of valid blocks in the set containing `addr` owned by `core`.
    pub fn owned_in_set(&self, addr: Address, core: CoreId) -> usize {
        let set = self.set_index(addr);
        let base = set * self.ways;
        let mut m = self.valid[set];
        let mut n = 0;
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            n += usize::from(self.owners[base + w] == core);
            m &= m - 1;
        }
        n
    }

    /// Hit/miss statistics since the last reset.
    #[inline]
    pub fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Number of dirty evictions since the last reset.
    #[inline]
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Clears statistics (contents are kept — used at the warm-up
    /// boundary).
    pub fn reset_stats(&mut self) {
        self.stats = HitMiss::new();
        self.writebacks = 0;
    }

    /// Total valid blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.valid.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Checks internal invariants (every set's LRU stack is a permutation
    /// of its valid ways; no duplicate block addresses in a set). Bool
    /// wrapper over [`Invariant::audit`], kept for test ergonomics.
    pub fn check_invariants(&self) -> bool {
        self.is_consistent()
    }

    /// Writes the mutable contents (tags, owners, valid/dirty bits,
    /// recency, digests, statistics) to a snapshot. Geometry-derived
    /// fields are not written — the restoring cache supplies its own.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_usize(self.tags.len());
        for &t in &self.tags {
            w.put_u64(t.raw());
        }
        w.put_usize(self.owners.len());
        for &o in &self.owners {
            w.put_u8(o.asid());
        }
        w.put_u32_slice(&self.valid);
        w.put_u32_slice(&self.dirty);
        w.put_usize(self.lru.len());
        for r in &self.lru {
            r.save_state(w);
        }
        self.filter.save_state(w);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.misses);
        w.put_u64(self.writebacks);
    }

    /// Restores contents written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Mismatch`] when the snapshot
    /// was taken from a cache of different geometry; decode errors
    /// otherwise.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        use simcore::snapshot::SnapshotError;
        let n_tags = r.get_usize()?;
        if n_tags != self.tags.len() {
            return Err(SnapshotError::Mismatch("cache tag array size"));
        }
        for t in &mut self.tags {
            *t = BlockAddr::new(r.get_u64()?);
        }
        let n_owners = r.get_usize()?;
        if n_owners != self.owners.len() {
            return Err(SnapshotError::Mismatch("cache owner array size"));
        }
        for o in &mut self.owners {
            *o = CoreId::from_index(r.get_u8()?);
        }
        let valid = r.get_u32_vec()?;
        let dirty = r.get_u32_vec()?;
        if valid.len() != self.valid.len() || dirty.len() != self.dirty.len() {
            return Err(SnapshotError::Mismatch("cache set count"));
        }
        self.valid = valid;
        self.dirty = dirty;
        let n_lru = r.get_usize()?;
        if n_lru != self.lru.len() {
            return Err(SnapshotError::Mismatch("cache recency array size"));
        }
        for rec in &mut self.lru {
            rec.load_state(r)?;
        }
        self.filter.load_state(r)?;
        // The memo is derived, unsnapshotted state; stale entries are
        // validated before use, but start the restored cache clean.
        self.memo.fill(0);
        self.stats.hits = r.get_u64()?;
        self.stats.misses = r.get_u64()?;
        self.writebacks = r.get_u64()?;
        Ok(())
    }
}

impl Invariant for Cache {
    fn component(&self) -> &'static str {
        "cache"
    }

    fn audit(&self) -> Vec<Violation> {
        let mut out = Vec::new(); // lint:allow(L7): cold diagnostics path
        for (si, (&mask, lru)) in self.valid.iter().zip(&self.lru).enumerate() {
            let base = si * self.ways;
            let valid: Vec<u8> = (0..self.ways as u8)
                .filter(|&w| mask & (1 << w) != 0)
                .collect();
            if lru.len() != valid.len() {
                out.push(
                    Violation::new(
                        self.component(),
                        format!(
                            "LRU stack tracks {} ways but {} blocks are valid",
                            lru.len(),
                            valid.len()
                        ),
                    )
                    .at_set(si),
                );
            }
            for &w in &valid {
                if !lru.contains(w) {
                    out.push(
                        Violation::new(self.component(), "valid block missing from LRU stack")
                            .at_set(si)
                            .at_way(usize::from(w)),
                    );
                }
                let d = swar::digest(self.tags[base + usize::from(w)].raw());
                if self.wide && self.filter.candidates(si, d) & (1u32 << w) == 0 {
                    out.push(
                        Violation::new(self.component(), "SWAR digest stale for valid way")
                            .at_set(si)
                            .at_way(usize::from(w)),
                    );
                }
            }
            for i in 0..valid.len() {
                for j in (i + 1)..valid.len() {
                    let (wi, wj) = (usize::from(valid[i]), usize::from(valid[j]));
                    if self.tags[base + wi] == self.tags[base + wj] {
                        out.push(
                            Violation::new(
                                self.component(),
                                format!(
                                    "duplicate block address {:#x} (also in way {wi})",
                                    self.tags[base + wj].raw()
                                ),
                            )
                            .at_set(si)
                            .at_way(wj),
                        );
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B
        Cache::new(CacheGeometry::new(512, 2, 64, 1).unwrap())
    }

    fn c0() -> CoreId {
        CoreId::from_index(0)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let a = Address::new(0x40);
        assert_eq!(c.access(a, false, c0()), Lookup::Miss);
        assert!(c.fill(a, false, c0()).is_none());
        assert!(c.access(a, false, c0()).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_set_conflict_evicts_lru() {
        let mut c = small();
        // 4 sets => stride 4*64 = 256 maps to the same set.
        let a = Address::new(0x00);
        let b = Address::new(0x100);
        let d = Address::new(0x200);
        c.fill(a, false, c0());
        c.fill(b, false, c0());
        let ev = c.fill(d, false, c0()).expect("two-way set overflows");
        assert_eq!(ev.addr, a.block(6));
        assert!(c.probe(b) && c.probe(d) && !c.probe(a));
        assert!(c.check_invariants());
    }

    #[test]
    fn access_promotes_to_mru() {
        let mut c = small();
        let a = Address::new(0x00);
        let b = Address::new(0x100);
        c.fill(a, false, c0());
        c.fill(b, false, c0());
        c.access(a, false, c0()); // a now MRU; b is LRU
        let ev = c.fill(Address::new(0x200), false, c0()).unwrap();
        assert_eq!(ev.addr, b.block(6));
    }

    #[test]
    fn lru_hit_is_flagged() {
        let mut c = small();
        let a = Address::new(0x00);
        let b = Address::new(0x100);
        c.fill(a, false, c0());
        c.fill(b, false, c0()); // stack: b(MRU), a(LRU)
        assert_eq!(c.access(a, false, c0()), Lookup::Hit { was_lru: true });
        assert_eq!(c.access(a, false, c0()), Lookup::Hit { was_lru: false });
    }

    #[test]
    fn write_sets_dirty_and_writeback_counted() {
        let mut c = small();
        let a = Address::new(0x00);
        c.fill(a, false, c0());
        c.access(a, true, c0()); // dirty now
        c.fill(Address::new(0x100), false, c0());
        assert!(c.fill(Address::new(0x200), false, c0()).unwrap().dirty);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn refill_of_resident_block_merges_dirty() {
        let mut c = small();
        let a = Address::new(0x00);
        c.fill(a, false, c0());
        assert!(c.fill(a, true, c0()).is_none());
        c.fill(Address::new(0x100), false, c0());
        let ev = c.fill(Address::new(0x200), false, c0()).unwrap();
        assert!(ev.dirty, "merged dirty bit must survive");
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = small();
        let a = Address::new(0x40);
        c.fill(a, true, c0());
        let out = c.invalidate(a).unwrap();
        assert_eq!(out.addr, a.block(6));
        assert!(out.dirty);
        assert!(!c.probe(a));
        assert!(c.invalidate(a).is_none());
        assert!(c.check_invariants());
    }

    #[test]
    fn owner_tracking() {
        let mut c = small();
        let a = Address::new(0x40);
        let owner = CoreId::from_index(2);
        c.fill(a, false, owner);
        assert_eq!(c.owner_of(a), Some(owner));
        assert_eq!(c.owned_in_set(a, owner), 1);
        assert_eq!(c.owned_in_set(a, c0()), 0);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small();
        let a = Address::new(0x00);
        let b = Address::new(0x100);
        c.fill(a, false, c0());
        c.fill(b, false, c0());
        assert!(c.probe(a));
        // a must still be LRU (probe must not promote).
        let ev = c.fill(Address::new(0x200), false, c0()).unwrap();
        assert_eq!(ev.addr, a.block(6));
        assert_eq!(c.stats().accesses(), 0, "probe leaves stats untouched");
    }

    #[test]
    fn resident_block_count() {
        let mut c = small();
        assert_eq!(c.resident_blocks(), 0);
        c.fill(Address::new(0x00), false, c0());
        c.fill(Address::new(0x40), false, c0());
        assert_eq!(c.resident_blocks(), 2);
    }

    #[test]
    fn sixteen_way_set_fills_and_evicts() {
        // One-set, 16-way cache: the packed-LRU word at full width.
        let mut c = Cache::new(CacheGeometry::new(1024, 16, 64, 1).unwrap());
        for i in 0..16u64 {
            assert!(c.fill(Address::new(i * 1024), false, c0()).is_none());
        }
        assert_eq!(c.resident_blocks(), 16);
        c.access(Address::new(0), false, c0()); // block 0 becomes MRU
        let ev = c.fill(Address::new(16 * 1024), false, c0()).unwrap();
        assert_eq!(ev.addr, Address::new(1024).block(6), "oldest untouched");
        assert!(c.check_invariants());
    }

    #[test]
    fn access_fill_matches_access_then_fill() {
        // The fused entry must evolve tags, recency, dirty bits, digests
        // and statistics exactly like the two-call sequence, hit or miss.
        use simcore::rng::SimRng;
        let mut rng = SimRng::seed_from(42);
        let mut fused = Cache::new(CacheGeometry::new(4096, 4, 64, 1).unwrap());
        let mut split = Cache::new(CacheGeometry::new(4096, 4, 64, 1).unwrap());
        for _ in 0..20_000 {
            let a = Address::new(rng.below(1 << 13));
            let write = rng.chance(0.3);
            let owner = CoreId::from_index((rng.below(4)) as u8);
            let (lookup_f, ev_f) = fused.access_fill(a, write, owner);
            let lookup_s = split.access(a, write, owner);
            let ev_s = if lookup_s.is_hit() {
                None
            } else {
                split.fill(a, write, owner)
            };
            assert_eq!(lookup_f, lookup_s);
            assert_eq!(ev_f, ev_s);
        }
        assert_eq!(fused.stats(), split.stats());
        assert_eq!(fused.writebacks(), split.writebacks());
        assert_eq!(fused.resident_blocks(), split.resident_blocks());
        assert!(fused.check_invariants());
        // Spot-check identical residency.
        for i in 0..(1u64 << 7) {
            let a = Address::new(i * 64);
            assert_eq!(fused.probe(a), split.probe(a));
            assert_eq!(fused.owner_of(a), split.owner_of(a));
        }
    }

    #[test]
    fn way_memo_is_invisible_to_results() {
        // The last-hit-way memo is a pure search-order optimization: a
        // random access/fill/invalidate workload must produce identical
        // lookups, evictions, statistics and snapshots with the memo
        // read on and off.
        use simcore::rng::SimRng;
        let run = |memo: bool| {
            let mut rng = SimRng::seed_from(7);
            let mut c = Cache::new(CacheGeometry::new(4096, 4, 64, 1).unwrap());
            c.set_memo(memo);
            let mut log = Vec::new();
            for _ in 0..20_000 {
                let a = Address::new(rng.below(1 << 13));
                let write = rng.chance(0.3);
                match rng.below(10) {
                    0 => log.push(format!("{:?}", c.invalidate(a))),
                    1 => log.push(format!("{:?}", c.fill(a, write, c0()))),
                    _ => {
                        let l = c.access(a, write, c0());
                        if !l.is_hit() {
                            c.fill(a, write, c0());
                        }
                        log.push(format!("{l:?}"));
                    }
                }
            }
            assert!(c.check_invariants());
            let mut w = simcore::snapshot::SnapshotWriter::new();
            c.save_state(&mut w);
            (log, c.stats(), c.writebacks(), w.finish())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn peek_and_commit_match_access_on_hits() {
        let mut a = Cache::new(CacheGeometry::new(2048, 4, 64, 1).unwrap());
        let mut b = Cache::new(CacheGeometry::new(2048, 4, 64, 1).unwrap());
        use simcore::rng::SimRng;
        let mut rng = SimRng::seed_from(17);
        for _ in 0..10_000 {
            let addr = Address::new(rng.below(1 << 12));
            let write = rng.chance(0.25);
            let la = a.access(addr, write, c0());
            let lb = match b.peek_hit_way(addr) {
                Some(w) => b.commit_hit_at(addr, w, write),
                None => b.access(addr, write, c0()),
            };
            assert_eq!(la, lb);
            if !la.is_hit() {
                a.fill(addr, write, c0());
                b.fill(addr, write, c0());
            }
        }
        assert_eq!(a.stats(), b.stats());
        let enc = |c: &Cache| {
            let mut w = simcore::snapshot::SnapshotWriter::new();
            c.save_state(&mut w);
            w.finish()
        };
        assert_eq!(enc(&a), enc(&b));
    }

    #[test]
    fn invariants_hold_under_random_workload() {
        use simcore::rng::SimRng;
        let mut rng = SimRng::seed_from(99);
        let mut c = Cache::new(CacheGeometry::new(4096, 4, 64, 1).unwrap());
        for _ in 0..5_000 {
            let a = Address::new(rng.below(1 << 14));
            let write = rng.chance(0.3);
            if !c.access(a, write, c0()).is_hit() {
                c.fill(a, write, c0());
            }
        }
        assert!(c.check_invariants());
        assert!(c.stats().accesses() == 5_000);
    }
}
