//! SWAR wide-way tag probes.
//!
//! The set-major SoA tag arrays (PR 5) store one 64-bit block address per
//! way, so the tags themselves cannot be packed into SIMD-within-a-register
//! lanes. What *can* be packed is a one-byte **digest** of each tag: a
//! [`TagFilter`] keeps one digest byte per way, eight ways per `u64` word,
//! and a probe compares all ≤16 ways against a broadcast digest in one or
//! two chunked `u64` passes (splat + XOR + zero-byte trick — the same SWAR
//! idiom as `PackedLru`'s nibble permutations). The resulting candidate
//! bitmask is ANDed with the set's valid mask and each surviving candidate
//! is confirmed with an exact tag compare, so the filter is *strictly
//! exact*: it can never change which way a lookup finds, only how many
//! full-width tag words the lookup has to load. On a miss — the common case
//! in a last-level cache — the probe usually touches one filter word and
//! zero tag words instead of walking the whole stripe.
//!
//! # Encoding
//!
//! - `digest(t) = (t * PHI64) >> 56` — the top byte of a Fibonacci-hash
//!   multiply, so single-bit address differences flip digest bits with high
//!   probability (false-candidate rate ≈ 1/256 per way).
//! - Filter word `k` of a set holds the digests of ways `8k..8k+8`, way
//!   `8k + j` in byte `j` (little-endian lane order, matching
//!   `trailing_zeros` way iteration).
//! - `match_mask(word, d)` broadcasts `d` to all eight lanes, XORs (a
//!   matching lane becomes `0x00`), applies the zero-byte detector
//!   `(x - LO) & !x & HI`, and gathers the per-lane `0x80` flags into the
//!   low eight bits with a carry-free multiply.
//!
//! Stale digests of invalidated ways are left in place; callers mask
//! candidates with the set's valid bits, which is both cheaper and exactly
//! what the scalar loop did.

/// Ways per filter word (one digest byte per way).
pub const LANES: usize = 8;

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;
/// Gathers the eight `0x01` lane flags of `z >> 7` into the top byte.
/// Partial products land at bit `8i + 7(j + 1)`; no two collide, so the
/// multiply is carry-free.
const GATHER: u64 = 0x0102_0408_1020_4080;
/// 2^64 / φ — the Fibonacci hashing multiplier.
const PHI64: u64 = 0x9e37_79b9_7f4a_7c15;

/// One-byte digest of a block address (top byte of a Fibonacci-hash
/// multiply).
#[inline]
#[must_use]
pub const fn digest(block: u64) -> u8 {
    (block.wrapping_mul(PHI64) >> 56) as u8
}

/// Bitmask of lanes in `word` equal to `digest` (bit `j` set ⇔ byte `j`
/// matches).
#[inline]
#[must_use]
pub const fn match_mask(word: u64, digest: u8) -> u32 {
    let x = word ^ (digest as u64).wrapping_mul(LO);
    let zero = x.wrapping_sub(LO) & !x & HI;
    ((zero >> 7).wrapping_mul(GATHER) >> 56) as u32
}

/// Packed per-way tag digests for a whole cache: `sets × ⌈ways/8⌉` words,
/// set-major. See the module docs for the encoding.
#[derive(Debug, Clone)]
pub struct TagFilter {
    /// `words[set * words_per_set + k]` holds ways `8k..8k+8` of `set`.
    words: Vec<u64>,
    words_per_set: usize,
}

impl TagFilter {
    /// Creates an all-zero filter for `sets` sets of `ways` ways.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        let words_per_set = ways.div_ceil(LANES);
        TagFilter {
            words: vec![0; sets * words_per_set], // lint:allow(L7): constructor
            words_per_set,
        }
    }

    /// Records the digest for a way; must be called at every tag-write
    /// site so the filter never misses a resident block.
    #[inline]
    pub fn record(&mut self, set: usize, way: usize, digest: u8) {
        let idx = set * self.words_per_set + way / LANES;
        let shift = (way % LANES) * 8;
        self.words[idx] = (self.words[idx] & !(0xffu64 << shift)) | ((digest as u64) << shift);
    }

    /// Candidate ways of `set` whose digest equals `digest`. Supersets the
    /// true match set; callers AND with the valid mask and confirm with an
    /// exact tag compare.
    #[inline]
    #[must_use]
    pub fn candidates(&self, set: usize, digest: u8) -> u32 {
        let base = set * self.words_per_set;
        let mut out = match_mask(self.words[base], digest);
        let mut k = 1;
        while k < self.words_per_set {
            out |= match_mask(self.words[base + k], digest) << (k * LANES);
            k += 1;
        }
        out
    }

    /// Bits of storage the filter occupies (for cost accounting).
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.words.len() * 64
    }

    /// Writes the digest words to a snapshot.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_u64_slice(&self.words);
    }

    /// Restores the digest words from a snapshot.
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Mismatch`] when the word
    /// count differs from this filter's geometry.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        let words = r.get_u64_vec()?;
        if words.len() != self.words.len() {
            return Err(simcore::snapshot::SnapshotError::Mismatch(
                "tag filter geometry",
            ));
        }
        self.words = words;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_mask_finds_every_lane() {
        for lane in 0..LANES {
            let word = 0xabu64 << (lane * 8);
            assert_eq!(match_mask(word, 0xab), 1 << lane, "lane {lane}");
        }
    }

    #[test]
    fn match_mask_handles_zero_digest() {
        // An all-zero word matches digest 0 in every lane.
        assert_eq!(match_mask(0, 0), 0xff);
        assert_eq!(match_mask(LO, 0), 0);
    }

    #[test]
    fn match_mask_multiple_lanes() {
        let word = 0x00cd_0000_cd00_00cdu64;
        assert_eq!(match_mask(word, 0xcd), 0b0100_1001);
    }

    #[test]
    fn digest_spreads_low_bit_differences() {
        // Neighbouring block addresses must not share a digest run.
        let d: Vec<u8> = (0..32u64).map(digest).collect();
        let distinct = {
            let mut s = d.clone();
            s.sort_unstable();
            s.dedup();
            s.len()
        };
        assert!(distinct >= 24, "only {distinct} distinct digests of 32");
    }

    #[test]
    fn filter_record_and_probe_round_trip() {
        let mut f = TagFilter::new(4, 16);
        f.record(2, 0, digest(100));
        f.record(2, 9, digest(100));
        f.record(2, 15, digest(7));
        let c = f.candidates(2, digest(100));
        assert_eq!(c & 0b11, 0b01);
        assert!(c & (1 << 9) != 0);
        // Other sets stay silent for a non-zero digest.
        assert_ne!(digest(100), 0);
        assert_eq!(f.candidates(1, digest(100)), 0);
    }

    #[test]
    fn record_overwrites_previous_digest() {
        let mut f = TagFilter::new(1, 8);
        f.record(0, 3, 0x11);
        f.record(0, 3, 0x22);
        assert_eq!(f.candidates(0, 0x11) & (1 << 3), 0);
        assert!(f.candidates(0, 0x22) & (1 << 3) != 0);
    }

    #[test]
    fn candidates_superset_exhaustive_small() {
        // Against a brute-force model over random states.
        use simcore::rng::SimRng;
        let mut rng = SimRng::seed_from(7);
        let mut f = TagFilter::new(8, 16);
        let mut model = [[0u8; 16]; 8];
        for _ in 0..2_000 {
            let set = (rng.below(8)) as usize;
            let way = (rng.below(16)) as usize;
            let d = digest(rng.below(1 << 20));
            f.record(set, way, d);
            model[set][way] = d;
            let probe = digest(rng.below(1 << 20));
            let got = f.candidates(set, probe);
            for (w, &md) in model[set].iter().enumerate() {
                if md == probe {
                    assert!(got & (1 << w) != 0, "missed way {w}");
                } else {
                    assert_eq!(got & (1 << w), 0, "false lane {w}");
                }
            }
        }
    }
}
