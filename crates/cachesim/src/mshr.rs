//! Miss status holding registers for the non-blocking cache hierarchy.
//!
//! Table 1's cores use non-blocking caches: a miss does not stall the
//! pipeline; independent instructions keep executing while the fill is in
//! flight. [`MshrFile`] tracks outstanding fills per cache, merging
//! secondary misses to the same block onto the existing entry so a block
//! is never fetched twice concurrently.

use simcore::types::{BlockAddr, Cycle};

/// Outcome of [`MshrFile::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must start the fill.
    Allocated,
    /// The block already has an outstanding fill completing at the given
    /// cycle; this (secondary) miss merged onto it.
    Merged(Cycle),
    /// No free entry: the requester must stall and retry.
    Full,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    addr: BlockAddr,
    ready_at: Cycle,
}

/// A fixed-capacity miss status holding register file.
///
/// # Example
///
/// ```
/// use cachesim::mshr::{MshrFile, MshrOutcome};
/// use simcore::types::{BlockAddr, Cycle};
///
/// let mut mshrs = MshrFile::new(2);
/// let blk = BlockAddr::new(0x10);
/// assert_eq!(mshrs.request(blk, Cycle::new(100)), MshrOutcome::Allocated);
/// assert_eq!(mshrs.request(blk, Cycle::new(120)), MshrOutcome::Merged(Cycle::new(100)));
/// let done = mshrs.drain_ready(Cycle::new(100));
/// assert_eq!(done, vec![blk]);
/// ```
/// Lifetime counters of an [`MshrFile`], feeding the telemetry layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Primary misses that allocated a fresh register.
    pub allocations: u64,
    /// Secondary misses merged onto an outstanding fill.
    pub merges: u64,
    /// Requests rejected because every register was occupied.
    pub rejections: u64,
}

#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<Entry>,
    stats: MshrStats,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one register");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            stats: MshrStats::default(),
        }
    }

    /// Lifetime allocation/merge/rejection counters.
    pub fn stats(&self) -> MshrStats {
        self.stats
    }

    /// Number of outstanding fills.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no fill is outstanding.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether every register is occupied.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The completion time of an outstanding fill for `addr`, if any.
    pub fn lookup(&self, addr: BlockAddr) -> Option<Cycle> {
        self.entries
            .iter()
            .find(|e| e.addr == addr)
            .map(|e| e.ready_at)
    }

    /// Registers a miss for `addr` whose fill completes at `ready_at`.
    ///
    /// Secondary misses merge (keeping the original completion time); a
    /// full file reports [`MshrOutcome::Full`] and allocates nothing.
    pub fn request(&mut self, addr: BlockAddr, ready_at: Cycle) -> MshrOutcome {
        if let Some(existing) = self.lookup(addr) {
            self.stats.merges += 1;
            return MshrOutcome::Merged(existing);
        }
        if self.is_full() {
            self.stats.rejections += 1;
            return MshrOutcome::Full;
        }
        self.entries.push(Entry { addr, ready_at });
        self.stats.allocations += 1;
        MshrOutcome::Allocated
    }

    /// Extends the completion time of an outstanding fill (used when the
    /// bus pushes an already-allocated fill later).
    pub fn postpone(&mut self, addr: BlockAddr, ready_at: Cycle) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.addr == addr) {
            e.ready_at = e.ready_at.max(ready_at);
        }
    }

    /// The earliest completion time among outstanding fills — the MSHR's
    /// contribution to the event horizon of the cycle-skipping run loop.
    /// `None` when no fill is outstanding.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.entries.iter().map(|e| e.ready_at).min()
    }

    /// Releases the registers whose fills have completed by `now` without
    /// collecting them — the allocation-free form of
    /// [`drain_ready`](Self::drain_ready) used on the per-cycle hot path,
    /// where the completion order is irrelevant.
    pub fn expire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.ready_at > now);
    }

    /// Drops every outstanding fill without completing it — used when the
    /// time-sampling scheduler abandons pipeline timing at a window
    /// boundary (the blocks themselves were installed state-wise when the
    /// misses issued; only their completion times die here). Lifetime
    /// statistics are kept.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Removes and returns the blocks whose fills have completed by `now`,
    /// in completion order.
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<BlockAddr> {
        let mut done: Vec<Entry> = Vec::new();
        self.entries.retain(|e| {
            if e.ready_at <= now {
                done.push(*e);
                false
            } else {
                true
            }
        });
        done.sort_by_key(|e| e.ready_at);
        done.into_iter().map(|e| e.addr).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_and_drain() {
        let mut m = MshrFile::new(4);
        let a = BlockAddr::new(1);
        let b = BlockAddr::new(2);
        assert_eq!(m.request(a, Cycle::new(50)), MshrOutcome::Allocated);
        assert_eq!(m.request(b, Cycle::new(60)), MshrOutcome::Allocated);
        assert_eq!(
            m.request(a, Cycle::new(70)),
            MshrOutcome::Merged(Cycle::new(50))
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m.drain_ready(Cycle::new(55)), vec![a]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.drain_ready(Cycle::new(100)), vec![b]);
        assert!(m.is_empty());
    }

    #[test]
    fn full_file_rejects_new_allocations() {
        let mut m = MshrFile::new(1);
        assert_eq!(
            m.request(BlockAddr::new(1), Cycle::new(10)),
            MshrOutcome::Allocated
        );
        assert_eq!(
            m.request(BlockAddr::new(2), Cycle::new(10)),
            MshrOutcome::Full
        );
        // But merging onto the existing entry still works.
        assert_eq!(
            m.request(BlockAddr::new(1), Cycle::new(10)),
            MshrOutcome::Merged(Cycle::new(10))
        );
    }

    #[test]
    fn drain_returns_in_completion_order() {
        let mut m = MshrFile::new(4);
        m.request(BlockAddr::new(1), Cycle::new(30));
        m.request(BlockAddr::new(2), Cycle::new(10));
        m.request(BlockAddr::new(3), Cycle::new(20));
        assert_eq!(
            m.drain_ready(Cycle::new(30)),
            vec![BlockAddr::new(2), BlockAddr::new(3), BlockAddr::new(1)]
        );
    }

    #[test]
    fn postpone_moves_completion_later_only() {
        let mut m = MshrFile::new(2);
        m.request(BlockAddr::new(1), Cycle::new(10));
        m.postpone(BlockAddr::new(1), Cycle::new(25));
        assert_eq!(m.lookup(BlockAddr::new(1)), Some(Cycle::new(25)));
        m.postpone(BlockAddr::new(1), Cycle::new(5));
        assert_eq!(m.lookup(BlockAddr::new(1)), Some(Cycle::new(25)));
        assert!(m.drain_ready(Cycle::new(10)).is_empty());
    }

    #[test]
    fn stats_count_allocations_merges_and_rejections() {
        let mut m = MshrFile::new(1);
        m.request(BlockAddr::new(1), Cycle::new(10));
        m.request(BlockAddr::new(1), Cycle::new(20));
        m.request(BlockAddr::new(2), Cycle::new(20));
        let s = m.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.merges, 1);
        assert_eq!(s.rejections, 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn clear_drops_fills_but_keeps_stats() {
        let mut m = MshrFile::new(4);
        m.request(BlockAddr::new(1), Cycle::new(30));
        m.request(BlockAddr::new(2), Cycle::new(10));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.next_completion(), None);
        assert_eq!(m.stats().allocations, 2);
        // The file is immediately reusable.
        assert_eq!(
            m.request(BlockAddr::new(1), Cycle::new(50)),
            MshrOutcome::Allocated
        );
    }

    #[test]
    fn next_completion_tracks_earliest_fill() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.next_completion(), None);
        m.request(BlockAddr::new(1), Cycle::new(30));
        m.request(BlockAddr::new(2), Cycle::new(10));
        assert_eq!(m.next_completion(), Some(Cycle::new(10)));
        m.expire(Cycle::new(10));
        assert_eq!(m.next_completion(), Some(Cycle::new(30)));
        m.expire(Cycle::new(9999));
        assert!(m.is_empty());
    }

    #[test]
    fn expire_matches_drain_ready() {
        let mut a = MshrFile::new(4);
        let mut b = MshrFile::new(4);
        for (blk, at) in [(1u64, 30u64), (2, 10), (3, 20)] {
            a.request(BlockAddr::new(blk), Cycle::new(at));
            b.request(BlockAddr::new(blk), Cycle::new(at));
        }
        a.expire(Cycle::new(20));
        let _ = b.drain_ready(Cycle::new(20));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.lookup(BlockAddr::new(1)), b.lookup(BlockAddr::new(1)));
    }
}
